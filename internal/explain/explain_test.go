package explain_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/explain"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/pdk"
	"repro/internal/power"
	"repro/internal/qor"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/testlib"
)

const clock = 1e-9

// runBaseline executes the real seeded flow on the smallest circuit.
func runBaseline(t *testing.T) *qor.Baseline {
	t.Helper()
	b, err := qor.Run(context.Background(), qor.RunOptions{
		Profile: qor.Profile{
			Name:      "unit",
			Circuits:  []string{"ctrl"},
			Scenarios: []synth.Scenario{synth.BaselinePowerAware},
			Corners:   []float64{300, 10},
			Repeat:    1,
		},
		UseTestlib: true,
		ClockSec:   clock,
	})
	if err != nil {
		t.Fatalf("qor.Run: %v", err)
	}
	return b
}

// TestSelfDiffZeroDelta pins the acceptance property: two runs of the
// identical seeded flow attribute zero delta, even though their wall-clock
// samples differ (runtime is correlation, not QoR).
func TestSelfDiffZeroDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow harness run")
	}
	a := runBaseline(t)
	b := runBaseline(t)
	rep := explain.Diff(a, b, explain.DefaultOptions())
	if !rep.ZeroDelta || rep.AttributedDeltas != 0 {
		var buf bytes.Buffer
		rep.WriteText(&buf)
		t.Fatalf("self-diff attributed %d deltas:\n%s", rep.AttributedDeltas, buf.String())
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "zero attributed delta") {
		t.Errorf("text report does not state the zero-delta verdict:\n%s", buf.String())
	}
	buf.Reset()
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"zero_delta": true`) {
		t.Errorf("JSON report missing zero_delta marker:\n%s", buf.String())
	}
}

// swapFixture is a mapped chain with a drive-swappable inverter in the
// middle of its critical path: a -> g1:INVx1 -> g2:INVx1 -> g3:NAND2x1 -> y1,
// plus a short side path b -> g4:INVx1 -> y2.
func swapFixture(t *testing.T) (*netlist.Netlist, *liberty.Library) {
	t.Helper()
	lib, used := testlib.Build(pdk.Catalog(), testlib.Names(), 300)
	nl := netlist.New("swapfix", used)
	nl.Inputs = []string{"a", "b"}
	for _, g := range []struct {
		cell string
		in   []string
		out  string
	}{
		{"INVx1", []string{"a"}, "n1"},
		{"INVx1", []string{"n1"}, "n2"},
		{"NAND2x1", []string{"n2", "b"}, "n3"},
		{"INVx1", []string{"b"}, "n4"},
	} {
		if err := nl.AddGate(g.cell, g.in, g.out); err != nil {
			t.Fatal(err)
		}
	}
	nl.Outputs = []string{"y1", "y2"}
	nl.Aliases["y1"] = "n3"
	nl.Aliases["y2"] = "n4"
	return nl, lib
}

// analyzeCorner runs STA + power on nl and builds the persisted corner
// record the way cryobench does.
func analyzeCorner(t *testing.T, nl *netlist.Netlist, lib *liberty.Library) qor.Corner {
	t.Helper()
	timing, err := sta.Analyze(context.Background(), nl, lib, sta.Options{})
	if err != nil {
		t.Fatalf("sta.Analyze: %v", err)
	}
	rep, cells, err := power.AnalyzeFull(context.Background(), nl, lib,
		power.Options{ClockPeriod: clock, Seed: 1})
	if err != nil {
		t.Fatalf("power.AnalyzeFull: %v", err)
	}
	corner := qor.Corner{
		TempK:       300,
		Gates:       nl.NumGates(),
		Area:        nl.Area(),
		CriticalSec: timing.CriticalDelay,
		WNSSec:      timing.WorstSlack(clock),
		LeakageW:    rep.Leakage,
		DynamicW:    rep.Internal + rep.Switching,
		TotalW:      rep.Total(),
	}
	for _, p := range timing.TopPaths(3, clock) {
		pr := qor.PathRecord{Endpoint: p.Endpoint, ArrivalSec: p.ArrivalSec, SlackSec: p.SlackSec}
		for _, a := range p.Arcs {
			pr.Arcs = append(pr.Arcs, qor.ArcRecord{
				FromNet: a.FromNet, ToNet: a.ToNet, Gate: a.Gate, Cell: a.Cell,
				Pin: a.FromPin, DelaySec: a.DelaySec, ArrivalSec: a.ArrivalSec,
				SlewSec: a.SlewSec, LoadF: a.LoadF,
			})
		}
		corner.Paths = append(corner.Paths, pr)
	}
	for _, c := range power.GroupByCell(cells) {
		corner.PowerByClass = append(corner.PowerByClass, qor.ClassPower{
			Cell: c.Cell, Count: c.Count,
			LeakageW: c.Leakage, InternalW: c.Internal, SwitchingW: c.Switching,
		})
	}
	return corner
}

func mkBaseline(c qor.Corner) *qor.Baseline {
	return &qor.Baseline{
		SchemaVersion: qor.SchemaVersion, Tool: "cryobench", Profile: "unit",
		Circuits: []qor.Circuit{{
			Name: "swapfix", Scenario: "baseline", Deterministic: true,
			Corners: []qor.Corner{c},
		}},
	}
}

// TestCellSwapAttribution is the seeded-mutation acceptance test: swap one
// mapped cell on the critical path to its drive-strength variant, re-run
// the real STA and power engines, and the attribution must name the
// swapped cell on the affected endpoint as cell-driven.
func TestCellSwapAttribution(t *testing.T) {
	nl, lib := swapFixture(t)
	baseCorner := analyzeCorner(t, nl, lib)

	// The mutation: the middle inverter on y1's path doubles its drive.
	const swapped, variant, endpoint = "INVx1", "INVx2", "y1"
	mutated := false
	for i := range nl.Gates {
		if nl.Gates[i].Output == "n2" {
			if nl.Gates[i].Cell != swapped {
				t.Fatalf("fixture drifted: n2 driven by %s", nl.Gates[i].Cell)
			}
			nl.Gates[i].Cell = variant
			mutated = true
		}
	}
	if !mutated {
		t.Fatal("fixture has no n2 driver")
	}
	curCorner := analyzeCorner(t, nl, lib)

	rep := explain.Diff(mkBaseline(baseCorner), mkBaseline(curCorner), explain.DefaultOptions())
	if rep.ZeroDelta {
		t.Fatalf("cell swap attributed nothing")
	}

	// The affected endpoint's path delta must carry a cell-swap arc naming
	// both cells, classified cell-driven.
	foundSwap := false
	for _, cd := range rep.Circuits {
		for _, c := range cd.Corners {
			for _, p := range c.Paths {
				if p.Endpoint != endpoint {
					continue
				}
				for _, a := range p.Arcs {
					if a.Change != explain.ArcCellSwap {
						continue
					}
					if a.BaseCell != swapped || a.CurCell != variant {
						t.Errorf("swap arc names %s->%s, want %s->%s",
							a.BaseCell, a.CurCell, swapped, variant)
					}
					if a.Driver != explain.DriverCell {
						t.Errorf("swap arc driver = %s, want %s", a.Driver, explain.DriverCell)
					}
					if a.ToNet != "n2" {
						t.Errorf("swap arc on net %s, want n2", a.ToNet)
					}
					foundSwap = true
				}
			}
		}
	}
	if !foundSwap {
		var buf bytes.Buffer
		rep.WriteText(&buf)
		t.Fatalf("no cell-swap arc on endpoint %s (%s -> %s):\n%s",
			endpoint, swapped, variant, buf.String())
	}

	// The short path y2 is untouched; it must not be attributed.
	for _, cd := range rep.Circuits {
		for _, c := range cd.Corners {
			for _, p := range c.Paths {
				if p.Endpoint == "y2" {
					t.Errorf("untouched endpoint y2 attributed: %+v", p)
				}
			}
		}
	}

	// The rendered reports must name the swap.
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), swapped+"->"+variant) {
		t.Errorf("text report does not name the swap %s->%s:\n%s", swapped, variant, buf.String())
	}
	buf.Reset()
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cell-swap") || !strings.Contains(buf.String(), "cell-driven") {
		t.Errorf("markdown report missing swap classification:\n%s", buf.String())
	}

	// The power breakdown must move between the two classes: INVx1 count
	// drops, INVx2 appears.
	var sawBase, sawVariant bool
	for _, cd := range rep.Circuits {
		for _, c := range cd.Corners {
			for _, p := range c.Power {
				switch p.Cell {
				case swapped:
					sawBase = true
					if p.BaseCount != 3 || p.CurCount != 2 {
						t.Errorf("%s count %d->%d, want 3->2", swapped, p.BaseCount, p.CurCount)
					}
				case variant:
					sawVariant = true
					if p.BaseCount != 0 || p.CurCount != 1 {
						t.Errorf("%s count %d->%d, want 0->1", variant, p.BaseCount, p.CurCount)
					}
				}
			}
		}
	}
	if !sawBase || !sawVariant {
		t.Errorf("power attribution missing swap classes (saw %s=%v, %s=%v)",
			swapped, sawBase, variant, sawVariant)
	}
}
