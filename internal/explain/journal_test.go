package explain_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/explain"
	"repro/internal/obs"
	"repro/internal/qor"
)

// journalFor writes a synthetic run journal: run.start, stage timings, and
// an artifact attestation for the given baseline file.
func journalFor(t *testing.T, runID, baselinePath string, stageSec float64) []obs.Event {
	t.Helper()
	var buf bytes.Buffer
	j := obs.NewJournal(&buf, runID)
	j.Event(obs.KindRunStart, "", "cryobench -profile smoke", map[string]string{"bin": "cryobench"})
	j.StageEnd("synth.synthesize", stageSec)
	j.StageEnd("rep.wall", stageSec*1.5)
	if baselinePath != "" {
		j.Artifact("cryobench", baselinePath)
	}
	j.Event(obs.KindRunEnd, "", "", nil)
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// writeBaseline persists a minimal v2 baseline and returns its path.
func writeBaseline(t *testing.T, dir, name string, wns float64) string {
	t.Helper()
	b := baselineWith(qor.Corner{TempK: 300, WNSSec: wns})
	path := filepath.Join(dir, name)
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFactsExtraction(t *testing.T) {
	dir := t.TempDir()
	path := writeBaseline(t, dir, "base.json", 7e-10)
	evs := journalFor(t, "r-abc", path, 0.5)
	f := explain.Facts(evs)
	if f.RunID != "r-abc" || f.Bin != "cryobench" {
		t.Errorf("run identity wrong: %+v", f)
	}
	if len(f.Stages["synth.synthesize"]) != 1 || f.Stages["synth.synthesize"][0] != 0.5 {
		t.Errorf("stage samples wrong: %+v", f.Stages)
	}
	if len(f.Baselines) != 1 || f.Baselines[0].Path != path {
		t.Fatalf("baseline attestation missing: %+v", f.Baselines)
	}
	if err := f.Baselines[0].Verify(); err != nil {
		t.Errorf("intact artifact failed verification: %v", err)
	}
}

func TestDiffJournalsWithIntactArtifacts(t *testing.T) {
	dir := t.TempDir()
	basePath := writeBaseline(t, dir, "base.json", 7e-10)
	curPath := writeBaseline(t, dir, "cur.json", 6.5e-10) // WNS regressed 50 ps

	baseEvs := journalFor(t, "r-base", basePath, 0.5)
	curEvs := journalFor(t, "r-cur", curPath, 0.5)
	rep := explain.DiffJournals(baseEvs, curEvs, explain.DefaultOptions())
	if rep.ZeroDelta {
		t.Fatal("WNS regression between attested baselines attributed nothing")
	}
	if !strings.Contains(rep.BaseLabel, "r-base") || !strings.Contains(rep.CurLabel, "r-cur") {
		t.Errorf("labels do not carry run IDs: %q vs %q", rep.BaseLabel, rep.CurLabel)
	}
	foundWNS := false
	for _, cd := range rep.Circuits {
		for _, c := range cd.Corners {
			for _, m := range c.Metrics {
				if m.Metric == "wns_seconds" {
					foundWNS = true
				}
			}
		}
	}
	if !foundWNS {
		t.Errorf("journal diff did not surface the WNS delta: %+v", rep.Circuits)
	}
}

func TestDiffJournalsSelfIsZeroDelta(t *testing.T) {
	dir := t.TempDir()
	path := writeBaseline(t, dir, "base.json", 7e-10)
	// Two runs of the same flow: identical artifact, jittery wall clock.
	baseEvs := journalFor(t, "r-1", path, 0.50)
	curEvs := journalFor(t, "r-2", path, 0.52)
	rep := explain.DiffJournals(baseEvs, curEvs, explain.DefaultOptions())
	if !rep.ZeroDelta {
		var buf bytes.Buffer
		rep.WriteText(&buf)
		t.Errorf("journal self-diff attributed deltas:\n%s", buf.String())
	}
}

func TestDiffJournalsDriftedArtifactSkipsQoR(t *testing.T) {
	dir := t.TempDir()
	basePath := writeBaseline(t, dir, "base.json", 7e-10)
	curPath := writeBaseline(t, dir, "cur.json", 6.5e-10)
	baseEvs := journalFor(t, "r-base", basePath, 0.5)
	curEvs := journalFor(t, "r-cur", curPath, 0.5)

	// The current artifact drifts after the journal attested to it.
	if err := os.WriteFile(curPath, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := explain.DiffJournals(baseEvs, curEvs, explain.DefaultOptions())
	if len(rep.Circuits) != 0 {
		t.Errorf("QoR attribution ran over a drifted artifact: %+v", rep.Circuits)
	}
	var sawDrift, sawSkip bool
	for _, n := range rep.Notes {
		if strings.Contains(n, "drifted on disk") {
			sawDrift = true
		}
		if strings.Contains(n, "QoR attribution skipped") {
			sawSkip = true
		}
	}
	if !sawDrift || !sawSkip {
		t.Errorf("drift not surfaced in notes: %v", rep.Notes)
	}
}

func TestDiffJournalsNoArtifactsStillCorrelatesStages(t *testing.T) {
	// No artifact events at all: stage shifts are still reported.
	baseEvs := journalFor(t, "r-1", "", 0.5)
	curEvs := journalFor(t, "r-2", "", 2.5) // 5x slower, tight
	rep := explain.DiffJournals(baseEvs, curEvs, explain.DefaultOptions())
	if len(rep.Stages) == 0 {
		t.Errorf("5x stage slowdown not correlated: %+v", rep)
	}
	if !rep.ZeroDelta {
		t.Errorf("runtime-only shift broke the zero-delta property")
	}
}
