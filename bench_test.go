// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation. Each benchmark prints the series/rows the paper
// reports (via b.Log / custom metrics) while timing the regeneration
// pipeline itself. The real SPICE-characterized libraries are used when a
// cached corner exists under build/ (create with `go run ./cmd/cryochar
// -temp 300 && go run ./cmd/cryochar -temp 10`); otherwise the fast
// synthetic library keeps the benchmarks runnable anywhere.
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"repro/internal/charlib"
	"repro/internal/device"
	"repro/internal/epfl"
	"repro/internal/fit"
	"repro/internal/liberty"
	"repro/internal/mapper"
	"repro/internal/measure"
	"repro/internal/pdk"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/testlib"
)

var (
	catalogOnce sync.Once
	catalog     []*pdk.Cell
)

func theCatalog() []*pdk.Cell {
	catalogOnce.Do(func() { catalog = pdk.Catalog() })
	return catalog
}

// libFor loads the cached SPICE-characterized corner when available and
// falls back to the synthetic library otherwise.
func libFor(b *testing.B, tempK float64) (*liberty.Library, []*pdk.Cell, bool) {
	b.Helper()
	cells := theCatalog()
	path := charlib.DefaultCachePath("build", tempK, len(cells))
	if f, err := os.Open(path); err == nil {
		defer f.Close()
		lib, perr := liberty.Parse(f)
		if perr == nil && len(lib.Cells) == len(cells) {
			return lib, cells, true
		}
	}
	lib, used := testlib.Build(cells, testlib.Names(), tempK)
	return lib, used, false
}

// ---------------------------------------------------------------------------
// Fig 1(b): transfer characteristics at |Vds| = 50 mV — model vs virtual
// measurements across 300 K .. 10 K, with the calibration RMS as the
// agreement metric.
// ---------------------------------------------------------------------------

func BenchmarkFig1b_TransferLowVds(b *testing.B) { benchFig1(b, 0.05) }

// Fig 1(c): same at |Vds| = 750 mV.
func BenchmarkFig1c_TransferHighVds(b *testing.B) { benchFig1(b, 0.75) }

func benchFig1(b *testing.B, vds float64) {
	for i := 0; i < b.N; i++ {
		for _, typ := range []device.Type{device.NFET, device.PFET} {
			silicon := measure.ReferenceSilicon(typ, 7)
			station := measure.NewStation(11)
			data := station.Measure(silicon, measure.PaperPlan())
			var initial *device.Model
			if typ == device.PFET {
				initial = device.NewP(1)
			} else {
				initial = device.NewN(1)
			}
			res := fit.Calibrate(initial, data, fit.AllKnobs, station.NoiseFloor)
			sub := measure.Dataset{Device: data.Device, Points: data.FilterVds(vds)}
			rms := fit.LogRMSError(res.Model, sub, station.NoiseFloor)
			if rms > 0.1 {
				b.Fatalf("%v: model/measurement agreement %.3f decades (want < 0.1)", typ, rms)
			}
			if i == 0 {
				b.Logf("Fig1 |Vds|=%gV %v: RMS agreement %.4f decades over %d points",
					vds, typ, rms, len(sub.Points))
				sign := 1.0
				if typ == device.PFET {
					sign = -1
				}
				for _, temp := range []float64{300, 77, 10} {
					line := fmt.Sprintf("  T=%3gK Ids(A) @|Vgs|=0,0.35,0.7: ", temp)
					for _, vg := range []float64{0, 0.35, 0.7} {
						line += fmt.Sprintf("%.3e ", math.Abs(res.Model.Ids(sign*vg, sign*vds, temp)))
					}
					b.Log(line)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Cryogenic device trends backing Section II: Vth up, SS band-tail limited,
// mobility up, leakage down orders of magnitude, on-current ~constant.
// ---------------------------------------------------------------------------

func BenchmarkCryoTrends(b *testing.B) {
	n := device.NewN(1)
	for i := 0; i < b.N; i++ {
		dVth := n.P.Vth(10) - n.P.Vth(300)
		ssRatio := n.P.SubthresholdSwing(300) / n.P.SubthresholdSwing(10)
		muGain := n.P.Mobility(10) / n.P.Mobility(300)
		leakDrop := n.OffCurrent(0.7, 300) / n.OffCurrent(0.7, 10)
		ionRatio := n.OnCurrent(0.7, 10) / n.OnCurrent(0.7, 300)
		if i == 0 {
			b.Logf("dVth=+%.0f mV, SS 300K/10K=%.1fx, mobility x%.2f, Ioff drop %.0fx, Ion ratio %.2f",
				dVth*1e3, ssRatio, muGain, leakDrop, ionRatio)
		}
		if dVth < 0.05 || leakDrop < 100 || ionRatio < 0.7 {
			b.Fatal("cryogenic trends out of the paper's envelope")
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 2(a): library-wide propagation-delay distribution at 300 K vs 10 K.
// The paper's observation: the distributions largely overlap.
// ---------------------------------------------------------------------------

func BenchmarkFig2a_DelayDistribution(b *testing.B) {
	lib300, _, real300 := libFor(b, 300)
	lib10, _, _ := libFor(b, 10)
	for i := 0; i < b.N; i++ {
		d300 := libraryDelays(lib300)
		d10 := libraryDelays(lib10)
		m300, m10 := median(d300), median(d10)
		shift := math.Abs(m10-m300) / m300
		if i == 0 {
			b.Logf("Fig2a (%s): median cell delay %.2f ps @300K vs %.2f ps @10K (shift %.1f%%, %d cells)",
				libKind(real300), m300*1e12, m10*1e12, shift*100, len(d300))
		}
		if shift > 0.5 {
			b.Fatalf("delay distributions do not overlap: %.1f%% median shift", shift*100)
		}
	}
}

// Fig 2(b): library-wide switching-energy distribution; slightly lower at
// 10 K.
func BenchmarkFig2b_EnergyDistribution(b *testing.B) {
	lib300, _, real300 := libFor(b, 300)
	lib10, _, _ := libFor(b, 10)
	for i := 0; i < b.N; i++ {
		e300 := libraryEnergies(lib300)
		e10 := libraryEnergies(lib10)
		m300, m10 := median(e300), median(e10)
		if i == 0 {
			b.Logf("Fig2b (%s): median switching energy %.4f fJ @300K vs %.4f fJ @10K (ratio %.3f)",
				libKind(real300), m300*1e15, m10*1e15, m10/m300)
		}
		if real300 && m10 > m300*1.1 {
			b.Fatalf("10K energy (%.3g) should not exceed 300K (%.3g) by >10%%", m10, m300)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 2(c): average leakage/internal/switching contribution over EPFL
// circuits at 300 K vs 10 K. Paper: ~15% leakage at 300 K collapses to
// ~0.003% at 10 K.
// ---------------------------------------------------------------------------

func BenchmarkFig2c_PowerBreakdown(b *testing.B) {
	lib300, cells300, real := libFor(b, 300)
	lib10, cells10, _ := libFor(b, 10)
	ml300, err := mapper.BuildMatchLibrary(lib300, cells300, 6)
	if err != nil {
		b.Fatal(err)
	}
	ml10, err := mapper.BuildMatchLibrary(lib10, cells10, 6)
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"ctrl", "router", "int2float", "cavlc", "i2c", "dec", "max", "bar"}
	for i := 0; i < b.N; i++ {
		var share300, share10 float64
		for _, name := range names {
			g, err := epfl.Build(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, corner := range []struct {
				ml   *mapper.MatchLibrary
				lib  *liberty.Library
				into *float64
			}{{ml300, lib300, &share300}, {ml10, lib10, &share10}} {
				res, err := synth.Synthesize(context.Background(), g, corner.ml, synth.Options{Scenario: synth.BaselinePowerAware, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := power.Analyze(context.Background(), res.Netlist, corner.lib, power.Options{ClockPeriod: 1e-9, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				*corner.into += rep.LeakageShare()
			}
		}
		share300 /= float64(len(names))
		share10 /= float64(len(names))
		if i == 0 {
			b.Logf("Fig2c (%s): avg leakage share %.4f%% @300K vs %.6f%% @10K (paper: ~15%% vs ~0.003%%)",
				libKind(real), share300*100, share10*100)
		}
		if share10 >= share300 {
			b.Fatal("leakage share must collapse at 10K")
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 3(a,b) + the Section V-C averages: per-circuit power savings and
// delay overheads of the two proposed hierarchies vs the baseline.
// ---------------------------------------------------------------------------

// fig3Circuits is the sweep used by the benchmark harness; the full-suite
// run lives in cmd/cryosynth.
var fig3Circuits = []string{
	"ctrl", "router", "cavlc", "i2c", "int2float", "dec", "max", "bar", "adder", "priority",
}

func BenchmarkFig3a_PowerSavings(b *testing.B) { benchFig3(b, true) }

func BenchmarkFig3b_DelayOverhead(b *testing.B) { benchFig3(b, false) }

func benchFig3(b *testing.B, reportPower bool) {
	lib10, cells, real := libFor(b, 10)
	ml, err := mapper.BuildMatchLibrary(lib10, cells, 6)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		var sumPAD, sumPDA float64
		for _, name := range fig3Circuits {
			g, err := epfl.Build(name)
			if err != nil {
				b.Fatal(err)
			}
			cmp, err := synth.Compare(context.Background(), g, ml, lib10, synth.FlowOptions{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			var vPAD, vPDA float64
			if reportPower {
				vPAD = cmp.PowerSaving(synth.CryoPAD) * 100
				vPDA = cmp.PowerSaving(synth.CryoPDA) * 100
			} else {
				vPAD = cmp.DelayOverhead(synth.CryoPAD) * 100
				vPDA = cmp.DelayOverhead(synth.CryoPDA) * 100
			}
			sumPAD += vPAD
			sumPDA += vPDA
			if i == 0 {
				kind := "power saving"
				if !reportPower {
					kind = "delay overhead"
				}
				b.Logf("%-10s %s: p->a->d %+6.2f%%  p->d->a %+6.2f%%", name, kind, vPAD, vPDA)
			}
		}
		n := float64(len(fig3Circuits))
		if i == 0 {
			if reportPower {
				b.Logf("AVERAGE power saving (%s lib): p->a->d %+5.2f%%, p->d->a %+5.2f%% (paper: +6.47%%, +5.74%%)",
					libKind(real), sumPAD/n, sumPDA/n)
			} else {
				b.Logf("AVERAGE delay overhead (%s lib): p->a->d %+5.2f%%, p->d->a %+5.2f%% (paper: -6.21%%, -1.74%%)",
					libKind(real), sumPAD/n, sumPDA/n)
			}
		}
	}
}

// BenchmarkTable_AverageSavings regenerates the Section V-C summary numbers
// in one pass over a compact circuit set.
func BenchmarkTable_AverageSavings(b *testing.B) {
	lib10, cells, real := libFor(b, 10)
	ml, err := mapper.BuildMatchLibrary(lib10, cells, 6)
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"ctrl", "router", "int2float", "cavlc", "max"}
	for i := 0; i < b.N; i++ {
		var p1, p2, d1, d2 float64
		for _, name := range names {
			g, _ := epfl.Build(name)
			cmp, err := synth.Compare(context.Background(), g, ml, lib10, synth.FlowOptions{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			p1 += cmp.PowerSaving(synth.CryoPAD)
			p2 += cmp.PowerSaving(synth.CryoPDA)
			d1 += cmp.DelayOverhead(synth.CryoPAD)
			d2 += cmp.DelayOverhead(synth.CryoPDA)
		}
		n := float64(len(names))
		if i == 0 {
			b.Logf("summary (%s lib): power %+0.2f%% / %+0.2f%%, delay %+0.2f%% / %+0.2f%% (pad/pda)",
				libKind(real), p1/n*100, p2/n*100, d1/n*100, d2/n*100)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations for the design choices called out in DESIGN.md.
// ---------------------------------------------------------------------------

// BenchmarkAblationCostOrder: the three priority lists on one circuit.
func BenchmarkAblationCostOrder(b *testing.B) {
	lib10, cells, _ := libFor(b, 10)
	ml, err := mapper.BuildMatchLibrary(lib10, cells, 6)
	if err != nil {
		b.Fatal(err)
	}
	g, _ := epfl.Build("router")
	for i := 0; i < b.N; i++ {
		for _, sc := range []synth.Scenario{synth.BaselinePowerAware, synth.CryoPAD, synth.CryoPDA} {
			res, err := synth.Synthesize(context.Background(), g, ml, synth.Options{Scenario: sc, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			tr, err := sta.Analyze(context.Background(), res.Netlist, lib10, sta.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("%-9s gates=%3d area=%6.0f delay=%6.1fps", sc, res.Netlist.NumGates(), res.Netlist.Area(), tr.CriticalDelay*1e12)
			}
		}
	}
}

// BenchmarkAblationMfs: SAT don't-care stage on vs off.
func BenchmarkAblationMfs(b *testing.B) {
	lib10, cells, _ := libFor(b, 10)
	ml, err := mapper.BuildMatchLibrary(lib10, cells, 6)
	if err != nil {
		b.Fatal(err)
	}
	g, _ := epfl.Build("int2float")
	for i := 0; i < b.N; i++ {
		on, err := synth.Synthesize(context.Background(), g, ml, synth.Options{Scenario: synth.CryoPAD, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		off, err := synth.Synthesize(context.Background(), g, ml, synth.Options{Scenario: synth.CryoPAD, Seed: 1, SkipMfs: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("mfs on: %d gates / %d AIG nodes; mfs off: %d gates / %d AIG nodes",
				on.Netlist.NumGates(), on.NodesPower, off.Netlist.NumGates(), off.NodesPower)
		}
	}
}

// BenchmarkAblationChoices: structural choices on vs off.
func BenchmarkAblationChoices(b *testing.B) {
	lib10, cells, _ := libFor(b, 10)
	ml, err := mapper.BuildMatchLibrary(lib10, cells, 6)
	if err != nil {
		b.Fatal(err)
	}
	g, _ := epfl.Build("cavlc")
	for i := 0; i < b.N; i++ {
		on, err := synth.Synthesize(context.Background(), g, ml, synth.Options{Scenario: synth.CryoPDA, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		off, err := synth.Synthesize(context.Background(), g, ml, synth.Options{Scenario: synth.CryoPDA, Seed: 1, SkipChoices: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("choices on: %d gates; choices off: %d gates", on.Netlist.NumGates(), off.Netlist.NumGates())
		}
	}
}

// BenchmarkAblationActivity: random-vector simulation vs probabilistic
// propagation as the activity source.
func BenchmarkAblationActivity(b *testing.B) {
	g, _ := epfl.Build("bar")
	for i := 0; i < b.N; i++ {
		probs := g.Activities()
		_, toggles := g.RandomSim(8, 3)
		var dSum, dMax float64
		n := 0
		for v := g.NumPIs() + 1; v < g.NumVars(); v++ {
			d := math.Abs(probs[v] - toggles[v])
			dSum += d
			if d > dMax {
				dMax = d
			}
			n++
		}
		if i == 0 {
			b.Logf("activity estimators: mean |prob - sim| = %.4f, max = %.4f over %d nodes", dSum/float64(n), dMax, n)
		}
	}
}

// BenchmarkAblationCutSize: mapping cut size K.
func BenchmarkAblationCutSize(b *testing.B) {
	lib10, cells, _ := libFor(b, 10)
	ml, err := mapper.BuildMatchLibrary(lib10, cells, 6)
	if err != nil {
		b.Fatal(err)
	}
	g, _ := epfl.Build("i2c")
	for i := 0; i < b.N; i++ {
		for _, k := range []int{3, 4, 5, 6} {
			nl, err := mapper.Map(context.Background(), g, ml, mapper.Options{Mode: mapper.PowerAreaDelay, K: k})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("K=%d: %d gates, area %.0f", k, nl.NumGates(), nl.Area())
			}
		}
	}
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func libKind(real bool) string {
	if real {
		return "SPICE-characterized"
	}
	return "synthetic"
}

func libraryDelays(lib *liberty.Library) []float64 {
	var out []float64
	for _, c := range lib.Cells {
		var worst float64
		for _, p := range c.Outputs() {
			for _, tm := range p.Timings {
				s := tm.CellRise.Index1[len(tm.CellRise.Index1)/2]
				l := tm.CellRise.Index2[len(tm.CellRise.Index2)/2]
				d := tm.CellRise.Lookup(s, l)
				if f := tm.CellFall.Lookup(s, l); f > d {
					d = f
				}
				if d > worst {
					worst = d
				}
			}
		}
		if worst > 0 {
			out = append(out, worst)
		}
	}
	return out
}

func libraryEnergies(lib *liberty.Library) []float64 {
	var out []float64
	for _, c := range lib.Cells {
		var sum float64
		arcs := 0
		for _, p := range c.Outputs() {
			for _, pw := range p.Powers {
				s := pw.RisePower.Index1[len(pw.RisePower.Index1)/2]
				l := pw.RisePower.Index2[len(pw.RisePower.Index2)/2]
				sum += 0.5 * (pw.RisePower.Lookup(s, l) + pw.FallPower.Lookup(s, l))
				arcs++
			}
		}
		if arcs > 0 {
			out = append(out, sum/float64(arcs))
		}
	}
	return out
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
