// Command cryospice is a standalone SPICE-subset simulator over the
// cryogenic-aware FinFET compact model: it parses a netlist deck, solves
// the DC operating point, and (when the deck has a .tran card) runs the
// transient analysis, printing node voltages.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/spice"
)

var flushObs = func() {}

func main() {
	temp := flag.Float64("temp", 300, "simulation temperature in kelvin (.temp overrides)")
	nodes := flag.String("nodes", "", "comma-separated node names to print (default: all)")
	points := flag.Int("points", 20, "transient waveform rows to print")
	vcdPath := flag.String("vcd", "", "dump the transient waveform to this VCD file")
	obsFlags := obs.InstallFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cryospice [-temp K] [-nodes a,b] [-vcd out.vcd] <deck.sp>")
		os.Exit(2)
	}
	flush, err := obsFlags.Activate()
	if err != nil {
		fatal(err)
	}
	flushObs = flush
	defer flush()
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	res, err := spice.ParseNetlist(f, spice.ParseOptions{Temp: *temp})
	if err != nil {
		fatal(err)
	}
	c := res.Circuit
	fmt.Printf("parsed %s: %d nodes, T=%g K\n", flag.Arg(0), c.NumNodes(), c.Temp)

	var wanted []string
	if *nodes != "" {
		wanted = strings.Split(*nodes, ",")
	} else {
		for i := 0; i < c.NumNodes(); i++ {
			name := c.NodeName(spice.NodeID(i))
			if !strings.Contains(name, ".__") {
				wanted = append(wanted, name)
			}
		}
		sort.Strings(wanted)
	}

	x, err := c.OpPoint()
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nDC operating point:")
	for _, n := range wanted {
		id := c.Node(n)
		if id == spice.Ground {
			continue
		}
		fmt.Printf("  V(%s) = %.6f V\n", n, x[id])
	}

	if !res.HasTran {
		if *vcdPath != "" {
			fatal(fmt.Errorf("-vcd needs a .tran card in the deck"))
		}
		return
	}
	fmt.Printf("\ntransient: tstop=%g s, tstep=%g s\n", res.Tstop, res.Tstep)
	wf, err := c.Transient(res.Tstop, res.Tstep)
	if err != nil {
		fatal(err)
	}
	if *vcdPath != "" {
		vf, err := os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		// -nodes also selects the dumped signals; default dumps everything.
		var sel []string
		if *nodes != "" {
			sel = wanted
		}
		err = wf.WriteVCD(vf, time.Now().UTC().Format(time.RFC3339), sel)
		if cerr := vf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nVCD waveform written: %s (%d samples)\n", *vcdPath, len(wf.Time))
	}
	stride := len(wf.Time) / *points
	if stride < 1 {
		stride = 1
	}
	fmt.Printf("%-12s", "time(s)")
	for _, n := range wanted {
		fmt.Printf(" %-10s", "V("+n+")")
	}
	fmt.Println()
	for i := 0; i < len(wf.Time); i += stride {
		fmt.Printf("%-12.4g", wf.Time[i])
		for _, n := range wanted {
			fmt.Printf(" %-10.4f", wf.V(n)[i])
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cryospice:", err)
	flushObs()
	os.Exit(1)
}
