// Command cryosynth runs the paper's evaluation (Section V): it synthesizes
// the EPFL benchmark suite under the three scenarios (state-of-the-art
// power-aware baseline, and the proposed cryogenic-aware p->a->d and
// p->d->a cost hierarchies), maps onto the characterized cryogenic
// standard-cell library, and reports:
//
//	-fig3       per-circuit power savings and delay overheads (Fig 3a/3b)
//	-breakdown  the leakage/internal/switching split at 300 K vs 10 K (Fig 2c)
//	-report     machine-readable JSON run report (per-stage wall time, peak
//	            AIG size, mapper cost, WNS at both temperature corners)
//	-verify     formal signoff gate: SAT-sweeping equivalence proofs that
//	            pre-opt ≡ post-opt ≡ mapped netlist for every scenario
//	            (docs/CEC.md); the run exits non-zero on any failure
//
// With -testlib a fast synthetic library replaces the SPICE-characterized
// one (useful for smoke runs); by default the SPICE-characterized 200-cell
// libraries are built (and cached) first.
//
// Observability: -metrics, -trace, -pprof, and -loglevel are shared by all
// flow binaries; see docs/OBSERVABILITY.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cec"
	"repro/internal/charlib"
	"repro/internal/epfl"
	"repro/internal/liberty"
	"repro/internal/mapper"
	"repro/internal/obs"
	"repro/internal/pdk"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/testlib"
)

// flushObs is set once the obs flags are activated so that check() can dump
// partial telemetry even when the run dies halfway.
var flushObs = func() {}

func main() {
	start := time.Now()
	circuits := flag.String("circuits", "", "comma-separated benchmark names (default: whole suite)")
	useTest := flag.Bool("testlib", false, "use the fast synthetic library instead of SPICE characterization")
	cacheDir := flag.String("cache", "build", "liberty cache directory")
	fig3 := flag.Bool("fig3", true, "run the Fig 3 scenario comparison")
	breakdown := flag.Bool("breakdown", false, "run the Fig 2(c) power-breakdown comparison")
	top := flag.Int("top", 0, "also print the N highest-power instances per circuit (baseline scenario)")
	seed := flag.Int64("seed", 1, "simulation seed")
	report := flag.String("report", "", "write a JSON run report to this file")
	verify := flag.Bool("verify", false, "run the formal equivalence signoff gate on every scenario")
	obsFlags := obs.InstallFlags(flag.CommandLine)
	flag.Parse()

	if *report != "" {
		// The run report needs per-stage wall times, which come from spans.
		obs.EnableTracing()
	}
	flush, err := obsFlags.Activate()
	check(err)
	flushObs = flush
	defer flush()

	names := epfl.Names()
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}

	ctx, root := obs.Start(context.Background(), "cryosynth")
	defer root.End()

	catalog := pdk.Catalog()
	lib10, lib300, cells := loadLibraries(ctx, *useTest, *cacheDir, catalog)
	ml10, err := mapper.BuildMatchLibrary(lib10, cells, 6)
	check(err)
	var ml300 *mapper.MatchLibrary
	if *breakdown || *report != "" {
		ml300, err = mapper.BuildMatchLibrary(lib300, cells, 6)
		check(err)
	}

	var verdicts []verifyRecord
	if *verify {
		ok, recs := runVerify(ctx, names, ml10, *seed)
		verdicts = recs
		if !ok {
			// Still record the verdicts when a report was requested: the
			// failing report is the artifact a CI triage wants.
			if *report != "" {
				if err := writeRunReport(ctx, *report, names, ml300, ml10, lib300, lib10, *seed, start, verdicts); err != nil {
					fmt.Fprintln(os.Stderr, "cryosynth: report:", err)
				}
			}
			check(fmt.Errorf("verification FAILED (see table above)"))
		}
	}
	if *breakdown {
		runBreakdown(ctx, names, ml300, ml10, lib300, lib10, *seed)
	}
	if *fig3 {
		runFig3(ctx, names, ml10, lib10, *seed)
	}
	if *top > 0 {
		runTopConsumers(ctx, names, ml10, lib10, *seed, *top)
	}
	if *report != "" {
		check(writeRunReport(ctx, *report, names, ml300, ml10, lib300, lib10, *seed, start, verdicts))
		fmt.Printf("run report written to %s\n", *report)
	}
	root.End()
}

// runTopConsumers prints the signoff-style per-instance power table for the
// baseline synthesis of each circuit.
func runTopConsumers(ctx context.Context, names []string, ml *mapper.MatchLibrary, lib *liberty.Library, seed int64, n int) {
	for _, name := range names {
		g, err := epfl.Build(name)
		check(err)
		res, err := synth.Synthesize(ctx, g, ml, synth.Options{Scenario: synth.BaselinePowerAware, Seed: seed})
		check(err)
		cells, err := power.Attribute(ctx, res.Netlist, lib, power.Options{ClockPeriod: 1e-9, Seed: seed})
		check(err)
		fmt.Printf("\n--- %s: top %d power consumers (1 GHz) ---\n", name, n)
		check(power.WriteTopConsumers(os.Stdout, cells, n))
	}
}

func loadLibraries(ctx context.Context, useTest bool, cacheDir string, catalog []*pdk.Cell) (lib10, lib300 *liberty.Library, cells []*pdk.Cell) {
	if useTest {
		lib300, cells = testlib.Build(catalog, testlib.Names(), 300)
		lib10, _ = testlib.Build(catalog, testlib.Names(), 10)
		fmt.Printf("using synthetic test library (%d cells)\n", len(cells))
		return lib10, lib300, cells
	}
	progress := func(done, total int) {
		if done%25 == 0 || done == total {
			fmt.Printf("  characterized %d/%d cells\n", done, total)
		}
	}
	var err error
	fmt.Println("characterizing / loading 300 K library...")
	lib300, err = charlib.CharacterizeLibraryCached(ctx,
		charlib.DefaultCachePath(cacheDir, 300, len(catalog)), "cryo300k", catalog,
		charlib.DefaultConfig(300), progress)
	check(err)
	fmt.Println("characterizing / loading 10 K library...")
	lib10, err = charlib.CharacterizeLibraryCached(ctx,
		charlib.DefaultCachePath(cacheDir, 10, len(catalog)), "cryo10k", catalog,
		charlib.DefaultConfig(10), progress)
	check(err)
	return lib10, lib300, catalog
}

// runFig3 reproduces Fig 3(a,b): per-circuit power savings and delay
// overheads of the cryogenic-aware cost hierarchies vs the baseline.
func runFig3(ctx context.Context, names []string, ml *mapper.MatchLibrary, lib *liberty.Library, seed int64) {
	fmt.Println("\n=== Fig 3 — cryogenic-aware synthesis vs state-of-the-art power-aware baseline (10 K library) ===")
	fmt.Printf("%-12s %10s | %9s %9s | %9s %9s\n",
		"circuit", "base(uW)", "pad dP%", "pda dP%", "pad dD%", "pda dD%")
	var sumPAD, sumPDA, sumDPAD, sumDPDA float64
	count := 0
	task := obs.Progress("synth.fig3", int64(len(names)))
	defer task.Finish()
	for _, name := range names {
		g, err := epfl.Build(name)
		check(err)
		cmp, err := synth.Compare(ctx, g, ml, lib, synth.FlowOptions{Seed: seed})
		task.Inc()
		if err != nil {
			fmt.Printf("%-12s FAILED: %v\n", name, err)
			continue
		}
		padP := cmp.PowerSaving(synth.CryoPAD) * 100
		pdaP := cmp.PowerSaving(synth.CryoPDA) * 100
		padD := cmp.DelayOverhead(synth.CryoPAD) * 100
		pdaD := cmp.DelayOverhead(synth.CryoPDA) * 100
		fmt.Printf("%-12s %10.3f | %+9.2f %+9.2f | %+9.2f %+9.2f\n",
			name, cmp.Metrics[synth.BaselinePowerAware].Power.Total()*1e6,
			padP, pdaP, padD, pdaD)
		sumPAD += padP
		sumPDA += pdaP
		sumDPAD += padD
		sumDPDA += pdaD
		count++
	}
	if count > 0 {
		n := float64(count)
		fmt.Printf("%-12s %10s | %+9.2f %+9.2f | %+9.2f %+9.2f\n",
			"AVERAGE", "", sumPAD/n, sumPDA/n, sumDPAD/n, sumDPDA/n)
		fmt.Println("\npaper reference: avg power saving 6.47% (p->a->d) / 5.74% (p->d->a);")
		fmt.Println("avg delay overhead -6.21% (p->a->d) / -1.74% (p->d->a); best-case saving up to 28%.")
	}
}

// verifyRecord is one (circuit, scenario) row of the -verify signoff gate,
// embedded verbatim in the -report JSON so CI artifacts carry the formal
// verdicts alongside the QoR numbers.
type verifyRecord struct {
	Circuit    string `json:"circuit"`
	Scenario   string `json:"scenario"`
	PrePost    string `json:"pre_post"`
	PostMapped string `json:"post_mapped"`
	OK         bool   `json:"ok"`
}

// runVerify is the formal signoff gate (-verify): for every circuit and
// every scenario it proves pre-opt ≡ post-opt and post-opt ≡ mapped netlist
// with the SAT-sweeping equivalence engine, printing one PASS/FAIL row per
// (circuit, scenario) pair. Returns false if any check is not EQUAL, plus
// the per-pair verdict records.
func runVerify(ctx context.Context, names []string, ml *mapper.MatchLibrary, seed int64) (bool, []verifyRecord) {
	fmt.Println("\n=== formal equivalence signoff (pre-opt ≡ post-opt ≡ mapped) ===")
	fmt.Printf("%-12s %-10s %10s %12s | %s\n", "circuit", "scenario", "pre≡post", "post≡mapped", "result")
	scenarios := []synth.Scenario{synth.BaselinePowerAware, synth.CryoPAD, synth.CryoPDA}
	ok := true
	var records []verifyRecord
	task := obs.Progress("synth.verify", int64(len(names))*int64(len(scenarios)))
	defer task.Finish()
	for _, name := range names {
		g, err := epfl.Build(name)
		check(err)
		for _, sc := range scenarios {
			res, err := synth.Synthesize(ctx, g, ml, synth.Options{Scenario: sc, Seed: seed})
			check(err)
			rep, err := synth.SignoffVerify(ctx, g, res, cec.Options{Seed: seed})
			check(err)
			task.Inc()
			result := "PASS"
			if !rep.OK() {
				result = "FAIL"
				ok = false
			}
			records = append(records, verifyRecord{
				Circuit:    name,
				Scenario:   sc.String(),
				PrePost:    rep.PrePost.Status.String(),
				PostMapped: rep.PostMapped.Status.String(),
				OK:         rep.OK(),
			})
			fmt.Printf("%-12s %-10s %10s %12s | %s\n",
				name, sc, rep.PrePost.Status, rep.PostMapped.Status, result)
			for _, v := range []*cec.Verdict{rep.PrePost, rep.PostMapped} {
				switch v.Status {
				case cec.NotEqual:
					if v.Reason != "" {
						fmt.Printf("    reason: %s\n", v.Reason)
					} else {
						fmt.Printf("    output %s differs (golden=%v impl=%v), cex: %s\n",
							v.FailingOutput, v.OutA, v.OutB, v.CexString())
					}
				case cec.Undecided:
					fmt.Printf("    undecided outputs: %s\n", strings.Join(v.UndecidedOutputs, ", "))
				}
			}
		}
	}
	if ok {
		fmt.Println("signoff: all scenarios formally verified")
	}
	return ok, records
}

// runBreakdown reproduces Fig 2(c): the average leakage/internal/switching
// contribution at 300 K vs 10 K across the suite.
func runBreakdown(ctx context.Context, names []string, ml300, ml10 *mapper.MatchLibrary, lib300, lib10 *liberty.Library, seed int64) {
	fmt.Println("\n=== Fig 2(c) — power breakdown: 300 K vs 10 K ===")
	type acc struct{ leak, internal, sw float64 }
	var a300, a10 acc
	count := 0
	task := obs.Progress("synth.breakdown", int64(len(names)))
	defer task.Finish()
	for _, name := range names {
		g, err := epfl.Build(name)
		check(err)
		task.Inc()
		for _, corner := range []struct {
			ml  *mapper.MatchLibrary
			lib *liberty.Library
			acc *acc
		}{{ml300, lib300, &a300}, {ml10, lib10, &a10}} {
			res, err := synth.Synthesize(ctx, g, corner.ml, synth.Options{
				Scenario: synth.BaselinePowerAware, Seed: seed,
			})
			check(err)
			rep, err := power.Analyze(ctx, res.Netlist, corner.lib, power.Options{
				ClockPeriod: 1e-9, Seed: seed,
			})
			check(err)
			t := rep.Total()
			corner.acc.leak += rep.Leakage / t
			corner.acc.internal += rep.Internal / t
			corner.acc.sw += rep.Switching / t
		}
		count++
	}
	n := float64(count)
	fmt.Printf("%-10s %12s %12s\n", "category", "300K", "10K")
	fmt.Printf("%-10s %11.4f%% %11.6f%%\n", "leakage", a300.leak/n*100, a10.leak/n*100)
	fmt.Printf("%-10s %11.4f%% %11.4f%%\n", "internal", a300.internal/n*100, a10.internal/n*100)
	fmt.Printf("%-10s %11.4f%% %11.4f%%\n", "switching", a300.sw/n*100, a10.sw/n*100)
	fmt.Println("\npaper reference: leakage ~15% at 300 K collapsing to ~0.003% at 10 K.")
}

// Run-report JSON shapes. Durations are seconds; WNS is reported against
// the shared 1 ns reference clock the CLI tables use.
type stageReport struct {
	Span    string  `json:"span"`
	Count   int     `json:"count"`
	Seconds float64 `json:"seconds"`
}

type cornerReport struct {
	TempK       float64 `json:"temp_k"`
	Gates       int     `json:"gates"`
	Area        float64 `json:"area"`
	MapperCost  float64 `json:"mapper_cost"`
	CriticalSec float64 `json:"critical_delay_seconds"`
	WNSSec      float64 `json:"wns_seconds"`
}

type circuitReport struct {
	Circuit      string         `json:"circuit"`
	NodesIn      int            `json:"nodes_in"`
	NodesC2RS    int            `json:"nodes_c2rs"`
	NodesPower   int            `json:"nodes_power"`
	PeakAIGNodes int            `json:"peak_aig_nodes"`
	Corners      []cornerReport `json:"corners"`
}

type runReport struct {
	Tool        string          `json:"tool"`
	ClockSec    float64         `json:"reference_clock_seconds"`
	Seed        int64           `json:"seed"`
	WallSeconds float64         `json:"wall_seconds"`
	Circuits    []circuitReport `json:"circuits"`
	Stages      []stageReport   `json:"stages"`
	// Verify carries the -verify signoff verdicts when both flags are given.
	Verify []verifyRecord `json:"verify,omitempty"`
}

// writeRunReport synthesizes each circuit under the baseline scenario at
// both temperature corners and emits the flow-level JSON report: per-stage
// wall time (from the span tracer), peak AIG size, mapper cost, and worst
// negative slack at 300 K and 10 K.
func writeRunReport(ctx context.Context, path string, names []string,
	ml300, ml10 *mapper.MatchLibrary, lib300, lib10 *liberty.Library, seed int64, start time.Time,
	verdicts []verifyRecord) error {
	const clock = 1e-9
	rep := runReport{Tool: "cryosynth", ClockSec: clock, Seed: seed, Verify: verdicts}
	for _, name := range names {
		g, err := epfl.Build(name)
		if err != nil {
			return err
		}
		cr := circuitReport{Circuit: name}
		for _, corner := range []struct {
			temp float64
			ml   *mapper.MatchLibrary
			lib  *liberty.Library
		}{{300, ml300, lib300}, {10, ml10, lib10}} {
			res, err := synth.Synthesize(ctx, g, corner.ml, synth.Options{
				Scenario: synth.BaselinePowerAware, Seed: seed,
			})
			if err != nil {
				return fmt.Errorf("report: %s at %gK: %w", name, corner.temp, err)
			}
			cr.NodesIn, cr.NodesC2RS, cr.NodesPower = res.NodesIn, res.NodesC2RS, res.NodesPower
			cr.PeakAIGNodes = max3(res.NodesIn, res.NodesC2RS, res.NodesPower)
			tr, err := sta.Analyze(ctx, res.Netlist, corner.lib, sta.Options{})
			if err != nil {
				return fmt.Errorf("report: %s STA at %gK: %w", name, corner.temp, err)
			}
			cr.Corners = append(cr.Corners, cornerReport{
				TempK:       corner.temp,
				Gates:       res.Netlist.NumGates(),
				Area:        res.Netlist.Area(),
				MapperCost:  res.Netlist.Area(),
				CriticalSec: tr.CriticalDelay,
				WNSSec:      tr.WorstSlack(clock),
			})
		}
		rep.Circuits = append(rep.Circuits, cr)
	}
	for name, tot := range obs.Tracing().Totals() {
		rep.Stages = append(rep.Stages, stageReport{
			Span: name, Count: tot.Count, Seconds: tot.Total.Seconds(),
		})
	}
	sort.Slice(rep.Stages, func(i, j int) bool { return rep.Stages[i].Span < rep.Stages[j].Span })
	rep.WallSeconds = time.Since(start).Seconds()
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryosynth:", err)
		flushObs()
		os.Exit(1)
	}
}
