// Command cryoaig is an ABC-style AIG utility: it reads a circuit (an
// AIGER file or a named EPFL benchmark), optionally runs optimization
// scripts, reports statistics, and writes AIGER/Verilog-mappable output.
//
//	cryoaig -circuit adder -stats
//	cryoaig -circuit sin -script c2rs -o sin_opt.aag
//	cryoaig -in design.aag -script "balance;rewrite;resub" -verify -stats
//	cryoaig -circuit priority -export-all dir/   # dump the whole EPFL suite
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/aig"
	"repro/internal/cec"
	"repro/internal/epfl"
	"repro/internal/obs"
)

var flushObs = func() {}

func main() {
	in := flag.String("in", "", "input AIGER file (.aag ASCII or .aig binary)")
	circuit := flag.String("circuit", "", "EPFL benchmark name (alternative to -in)")
	script := flag.String("script", "", "semicolon-separated passes: balance, rewrite, rewrite-z, refactor, resub, c2rs, lutpack")
	out := flag.String("o", "", "output AIGER path")
	stats := flag.Bool("stats", true, "print size/depth statistics")
	verify := flag.Bool("verify", false, "SAT-verify equivalence of the optimized AIG")
	exportAll := flag.String("export-all", "", "write every EPFL benchmark as AIGER into this directory and exit")
	obsFlags := obs.InstallFlags(flag.CommandLine)
	flag.Parse()

	flush, err := obsFlags.Activate()
	if err != nil {
		fatal(err)
	}
	flushObs = flush
	defer flush()

	if *exportAll != "" {
		if err := exportSuite(*exportAll); err != nil {
			fatal(err)
		}
		return
	}

	g, err := load(*in, *circuit)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Printf("input:  %s\n", describe(g))
	}
	opt := g
	if *script != "" {
		opt, err = runScript(g, *script)
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Printf("output: %s\n", describe(opt))
		}
		if *verify {
			v := cec.Check(context.Background(), g, opt, cec.Options{})
			switch v.Status {
			case cec.Undecided:
				fatal(fmt.Errorf("verification inconclusive (budget exhausted on %s)",
					strings.Join(v.UndecidedOutputs, ", ")))
			case cec.NotEqual:
				fmt.Fprintf(os.Stderr, "output %s differs (input=%v optimized=%v)\n",
					v.FailingOutput, v.OutA, v.OutB)
				fmt.Fprintf(os.Stderr, "counterexample: %s\n", v.CexString())
				fatal(fmt.Errorf("VERIFICATION FAILED: optimized AIG differs"))
			default:
				fmt.Println("verified: optimized AIG is equivalent (SAT sweep)")
			}
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if strings.HasSuffix(*out, ".aig") {
			err = opt.WriteAIGERBinary(f)
		} else {
			err = opt.WriteAIGER(f)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func load(in, circuit string) (*aig.AIG, error) {
	switch {
	case in != "" && circuit != "":
		return nil, fmt.Errorf("specify either -in or -circuit, not both")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(in, ".aig") {
			return aig.ReadAIGERBinary(f)
		}
		return aig.ReadAIGER(f)
	case circuit != "":
		return epfl.Build(circuit)
	default:
		return nil, fmt.Errorf("no input: use -in file.aag or -circuit <name> (%s)", strings.Join(epfl.Names(), ", "))
	}
}

func runScript(g *aig.AIG, script string) (*aig.AIG, error) {
	cur := g
	for _, pass := range strings.Split(script, ";") {
		pass = strings.TrimSpace(pass)
		if pass == "" {
			continue
		}
		switch pass {
		case "balance", "b":
			cur = cur.Balance()
		case "rewrite", "rw":
			cur = cur.Rewrite(false)
		case "rewrite-z", "rwz":
			cur = cur.Rewrite(true)
		case "refactor", "rf":
			cur = cur.Refactor()
		case "resub", "rs":
			cur = cur.Resub(aig.DefaultResubOptions())
		case "c2rs":
			cur = cur.Balance().
				Resub(aig.DefaultResubOptions()).
				Rewrite(false).
				Resub(aig.DefaultResubOptions()).
				Refactor().
				Balance().
				Rewrite(true).
				Balance()
		case "lutpack":
			lut := cur.MapLUT(aig.LUTMapOptions{K: 6, PowerAware: true})
			lut.Mfs(aig.DefaultMfsOptions())
			cur = lut.Strash()
		default:
			return nil, fmt.Errorf("unknown pass %q", pass)
		}
		fmt.Printf("  after %-10s %s\n", pass+":", describe(cur))
	}
	return cur, nil
}

func describe(g *aig.AIG) string {
	return fmt.Sprintf("%-12s pi=%4d po=%4d and=%6d depth=%3d",
		g.Name, g.NumPIs(), g.NumPOs(), g.NumNodes(), g.Depth())
}

func exportSuite(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, gen := range epfl.Suite() {
		g := gen.Build()
		path := filepath.Join(dir, gen.Name+".aag")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := g.WriteAIGER(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
		fmt.Printf("wrote %-24s %s\n", path, describe(g))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cryoaig:", err)
	flushObs()
	os.Exit(1)
}
