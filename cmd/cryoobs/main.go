// Command cryoobs reads the structured JSONL run journals written by the
// flow binaries (the -journal flag) and turns them into failure forensics:
//
//	cryoobs report  [-o report.md] [-run <id>] journal.jsonl...  # markdown post-mortem
//	cryoobs summary journal.jsonl...                             # one line per run
//	cryoobs tail    [-n 20] [-kind failure] journal.jsonl...     # last N events
//	cryoobs tail    -f [-poll 500ms] journal.jsonl               # follow a live journal
//	cryoobs merge   journal.jsonl...                             # merged JSONL to stdout
//	cryoobs explain [-o report.md] [-md] journal-a journal-b     # cross-run attribution
//	cryoobs trend   [-history bench/history.jsonl] [-glob ...]   # run-over-run metric trends
//	cryoobs cost    [-run <id>] [-md|-json] <journal|history>    # span cost-attribution tree
//
// report renders per-run stage timelines, failure sites ranked by
// recurrence, watchdog stall post-mortems (active span stack + goroutine
// dump), and the worst-converging devices and nodes decoded from SPICE
// nonconvergence diagnoses. merge interleaves journals from several
// binaries of one flow invocation by wall-clock time, preserving run IDs,
// so a single file can feed later analysis. explain diffs two journal
// runs (A = baseline, B = current): stage wall-time shifts always, plus
// full QoR attribution when both journals attest to a cryobench baseline
// artifact that is still intact on disk (SHA-256 verified). trend reads
// the append-only metrics history store (the -history flag every flow
// binary shares) and renders run-over-run tables for glob-selected
// metrics, flagging values that drift outside the noise band of their own
// history.
//
// Exit status: 0 on success (report/summary exit 0 even when the journal
// records failures — the journal being readable is the success condition),
// 2 on usage or read errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/explain"
	"repro/internal/forensics"
	"repro/internal/obs"
	"repro/internal/qor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "report":
		cmdReport(args)
	case "summary":
		cmdSummary(args)
	case "tail":
		cmdTail(args)
	case "merge":
		cmdMerge(args)
	case "explain":
		cmdExplain(args)
	case "trend":
		cmdTrend(args)
	case "cost":
		cmdCost(args)
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "cryoobs: unknown command %q\n\n", cmd)
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cryoobs <command> [flags] <journal.jsonl>...

commands:
  report   render a markdown post-mortem (stage timeline, failure sites
           ranked by recurrence, stalls, worst-converging devices/nodes)
  summary  one-line status per run
  tail     pretty-print the last events; -f follows a live journal
  merge    merge journals by time into one JSONL stream on stdout
  explain  attribute the QoR and runtime difference between two journal
           runs: cryoobs explain <journal-a> <journal-b>
  trend    run-over-run metric trend tables from the -history store:
           cryoobs trend [-history bench/history.jsonl] [-glob spice.*]
  cost     span cost-attribution tree (self-CPU sorted, engine-counter
           columns) from a journal's cost events, or the per-stage cost
           table of a history record: cryoobs cost <journal|history>`)
	os.Exit(2)
}

// activate applies the shared obs flags (every subcommand carries the full
// surface, like every other flow binary) and schedules the flush.
func activate(of *obs.Flags) func() {
	flush, err := of.Activate()
	check(err)
	return flush
}

func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	of := obs.InstallFlags(fs)
	out := fs.String("o", "", "write the report to this file instead of stdout")
	md := fs.Bool("md", false, "render markdown instead of the console report")
	fs.Parse(args)
	defer activate(of)()
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: cryoobs explain [-o report.md] [-md] <journal-a> <journal-b>")
		os.Exit(2)
	}
	// Load each journal separately: explain needs the two runs' facts apart,
	// not a time-merged stream.
	baseEvs, err := forensics.Load(fs.Arg(0))
	check(err)
	curEvs, err := forensics.Load(fs.Arg(1))
	check(err)
	rep := explain.DiffJournals(baseEvs, curEvs, explain.DefaultOptions())
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		w = f
	}
	if *md {
		check(rep.WriteMarkdown(w))
	} else {
		check(rep.WriteText(w))
	}
}

func cmdReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	of := obs.InstallFlags(fs)
	out := fs.String("o", "", "write the report to this file instead of stdout")
	run := fs.String("run", "", "restrict the report to one run ID")
	fs.Parse(args)
	defer activate(of)()
	evs := loadArgs(fs)
	if *run != "" {
		evs = forensics.FilterRun(evs, *run)
	}
	rep := forensics.Build(evs)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		w = f
	}
	check(rep.WriteMarkdown(w))
}

func cmdSummary(args []string) {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	of := obs.InstallFlags(fs)
	fs.Parse(args)
	defer activate(of)()
	evs := loadArgs(fs)
	check(forensics.Build(evs).WriteSummary(os.Stdout))
}

func cmdTail(args []string) {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	of := obs.InstallFlags(fs)
	n := fs.Int("n", 20, "number of trailing events to print")
	kind := fs.String("kind", "", "only events of this kind (e.g. failure, artifact)")
	run := fs.String("run", "", "only events of this run ID")
	follow := fs.Bool("f", false, "follow mode: poll the journal and print events as they are appended (single journal; tolerates the file not existing yet)")
	poll := fs.Duration("poll", 500*time.Millisecond, "follow-mode poll interval")
	fs.Parse(args)
	defer activate(of)()
	if *follow {
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "cryoobs: tail -f follows exactly one journal file")
			os.Exit(2)
		}
		followTail(fs.Arg(0), *kind, *run, *poll)
		return
	}
	evs := loadArgs(fs)
	if *run != "" {
		evs = forensics.FilterRun(evs, *run)
	}
	if *kind != "" {
		evs = forensics.FilterKind(evs, *kind)
	}
	if *n > 0 && len(evs) > *n {
		evs = evs[len(evs)-*n:]
	}
	for i := range evs {
		check(forensics.WriteEvent(os.Stdout, &evs[i]))
	}
}

// followTail prints the journal from its start and keeps polling for
// appended events until interrupted.
func followTail(path, kind, run string, poll time.Duration) {
	fol := forensics.NewFollower(path)
	for {
		evs, err := fol.Poll()
		check(err)
		for i := range evs {
			e := &evs[i]
			if run != "" && e.Run != run {
				continue
			}
			if kind != "" && e.Kind != kind {
				continue
			}
			check(forensics.WriteEvent(os.Stdout, e))
		}
		time.Sleep(poll)
	}
}

func cmdMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	of := obs.InstallFlags(fs)
	fs.Parse(args)
	defer activate(of)()
	evs := loadArgs(fs)
	enc := json.NewEncoder(os.Stdout)
	for i := range evs {
		check(enc.Encode(&evs[i]))
	}
}

func cmdTrend(args []string) {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	of := obs.InstallFlags(fs)
	last := fs.Int("last", 8, "only the most recent N runs (0 = all)")
	glob := fs.String("glob", "*", "comma-separated metric globs ('*' matches any run of characters), e.g. 'spice.solver.*,stage.*'")
	md := fs.Bool("md", false, "render a markdown table instead of text")
	asJSON := fs.Bool("json", false, "emit the trend report as JSON")
	out := fs.String("o", "", "write the report to this file instead of stdout")
	fs.Parse(args)
	// The shared -history flag names the store to READ here; clear it before
	// activation so trend does not append a record about itself to the store
	// it is reporting on.
	hist := of.HistoryPath
	if hist == "" {
		hist = "bench/history.jsonl"
	}
	of.HistoryPath = ""
	defer activate(of)()
	recs, err := obs.ReadHistoryFile(hist)
	check(err)
	if len(recs) == 0 {
		fmt.Fprintf(os.Stderr, "cryoobs: %s holds no history records\n", hist)
		os.Exit(2)
	}
	var globs []string
	for _, g := range strings.Split(*glob, ",") {
		if g = strings.TrimSpace(g); g != "" {
			globs = append(globs, g)
		}
	}
	rep := forensics.Trend(recs, globs, *last, qor.DefaultThresholds())
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		w = f
	}
	switch {
	case *asJSON:
		check(rep.WriteJSON(w))
	case *md:
		check(rep.WriteMarkdown(w))
	default:
		check(rep.WriteText(w))
	}
}

// cmdCost renders cost attribution captured by the -cost flag. Given a
// journal it rebuilds the full span cost tree from the typed cost events;
// given a history store it falls back to the flat per-stage cost columns
// of the selected (default: latest) record.
func cmdCost(args []string) {
	fs := flag.NewFlagSet("cost", flag.ExitOnError)
	of := obs.InstallFlags(fs)
	run := fs.String("run", "", "run ID to select (default: last run carrying cost data)")
	md := fs.Bool("md", false, "render a markdown table instead of text")
	asJSON := fs.Bool("json", false, "emit the cost report as JSON")
	out := fs.String("o", "", "write the report to this file instead of stdout")
	counters := fs.String("counters", "", "comma-separated counter globs shown per node (default: engine counters spice.solver.*, sat.*, ...)")
	fs.Parse(args)
	defer activate(of)()
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cryoobs cost [-run <id>] [-md|-json] [-o file] <journal.jsonl|history.jsonl>")
		os.Exit(2)
	}
	path := fs.Arg(0)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		w = f
	}
	var opts obs.CostRenderOptions
	if *counters != "" {
		for _, g := range strings.Split(*counters, ",") {
			if g = strings.TrimSpace(g); g != "" {
				opts.CounterGlobs = append(opts.CounterGlobs, g)
			}
		}
	}

	// A journal line always carries "kind"; a history line never does. Try
	// the journal shape first and fall back to history records.
	evs, jerr := forensics.Load(path)
	if jerr == nil && isJournal(evs) {
		rep, err := forensics.CostFromEvents(evs, *run)
		check(err)
		switch {
		case *asJSON:
			check(rep.WriteJSON(w))
		case *md:
			check(rep.WriteMarkdown(w, opts))
		default:
			check(rep.WriteText(w, opts))
		}
		return
	}
	recs, herr := obs.ReadHistoryFile(path)
	if herr != nil || len(recs) == 0 {
		if jerr != nil {
			check(jerr)
		}
		check(fmt.Errorf("%s holds neither journal cost events nor history records", path))
	}
	rec := pickCostRecord(recs, *run)
	if rec == nil {
		check(fmt.Errorf("%s: no history record with stage costs (run %q)", path, *run))
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		check(enc.Encode(rec.Costs))
		return
	}
	check(forensics.WriteStageCosts(w, rec))
}

// isJournal reports whether loaded events look like a journal (at least
// one record decoded a kind; history lines leave Kind empty).
func isJournal(evs []obs.Event) bool {
	for i := range evs {
		if evs[i].Kind != "" {
			return true
		}
	}
	return false
}

// pickCostRecord selects the history record to render: the requested run,
// or the newest record that carries stage costs.
func pickCostRecord(recs []obs.HistoryRecord, run string) *obs.HistoryRecord {
	for i := len(recs) - 1; i >= 0; i-- {
		r := &recs[i]
		if run != "" {
			if r.Run == run {
				return r
			}
			continue
		}
		if len(r.Costs) > 0 {
			return r
		}
	}
	return nil
}

func loadArgs(fs *flag.FlagSet) []obs.Event {
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "cryoobs: no journal files given")
		os.Exit(2)
	}
	evs, err := forensics.Load(fs.Args()...)
	check(err)
	return evs
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryoobs:", err)
		os.Exit(2)
	}
}
