// Command cryoobs reads the structured JSONL run journals written by the
// flow binaries (the -journal flag) and turns them into failure forensics:
//
//	cryoobs report  [-o report.md] [-run <id>] journal.jsonl...  # markdown post-mortem
//	cryoobs summary journal.jsonl...                             # one line per run
//	cryoobs tail    [-n 20] [-kind failure] journal.jsonl...     # last N events
//	cryoobs merge   journal.jsonl...                             # merged JSONL to stdout
//	cryoobs explain [-o report.md] [-md] journal-a journal-b     # cross-run attribution
//
// report renders per-run stage timelines, failure sites ranked by
// recurrence, and the worst-converging devices and nodes decoded from
// SPICE nonconvergence diagnoses. merge interleaves journals from several
// binaries of one flow invocation by wall-clock time, preserving run IDs,
// so a single file can feed later analysis. explain diffs two journal
// runs (A = baseline, B = current): stage wall-time shifts always, plus
// full QoR attribution when both journals attest to a cryobench baseline
// artifact that is still intact on disk (SHA-256 verified).
//
// Exit status: 0 on success (report/summary exit 0 even when the journal
// records failures — the journal being readable is the success condition),
// 2 on usage or read errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/explain"
	"repro/internal/forensics"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "report":
		cmdReport(args)
	case "summary":
		cmdSummary(args)
	case "tail":
		cmdTail(args)
	case "merge":
		cmdMerge(args)
	case "explain":
		cmdExplain(args)
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "cryoobs: unknown command %q\n\n", cmd)
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cryoobs <command> [flags] <journal.jsonl>...

commands:
  report   render a markdown post-mortem (stage timeline, failure sites
           ranked by recurrence, worst-converging devices/nodes)
  summary  one-line status per run
  tail     pretty-print the last events
  merge    merge journals by time into one JSONL stream on stdout
  explain  attribute the QoR and runtime difference between two journal
           runs: cryoobs explain <journal-a> <journal-b>`)
	os.Exit(2)
}

func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	out := fs.String("o", "", "write the report to this file instead of stdout")
	md := fs.Bool("md", false, "render markdown instead of the console report")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: cryoobs explain [-o report.md] [-md] <journal-a> <journal-b>")
		os.Exit(2)
	}
	// Load each journal separately: explain needs the two runs' facts apart,
	// not a time-merged stream.
	baseEvs, err := forensics.Load(fs.Arg(0))
	check(err)
	curEvs, err := forensics.Load(fs.Arg(1))
	check(err)
	rep := explain.DiffJournals(baseEvs, curEvs, explain.DefaultOptions())
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		w = f
	}
	if *md {
		check(rep.WriteMarkdown(w))
	} else {
		check(rep.WriteText(w))
	}
}

func cmdReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	out := fs.String("o", "", "write the report to this file instead of stdout")
	run := fs.String("run", "", "restrict the report to one run ID")
	fs.Parse(args)
	evs := loadArgs(fs)
	if *run != "" {
		evs = forensics.FilterRun(evs, *run)
	}
	rep := forensics.Build(evs)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		w = f
	}
	check(rep.WriteMarkdown(w))
}

func cmdSummary(args []string) {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	fs.Parse(args)
	evs := loadArgs(fs)
	check(forensics.Build(evs).WriteSummary(os.Stdout))
}

func cmdTail(args []string) {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	n := fs.Int("n", 20, "number of trailing events to print")
	kind := fs.String("kind", "", "only events of this kind (e.g. failure, artifact)")
	run := fs.String("run", "", "only events of this run ID")
	fs.Parse(args)
	evs := loadArgs(fs)
	if *run != "" {
		evs = forensics.FilterRun(evs, *run)
	}
	if *kind != "" {
		evs = forensics.FilterKind(evs, *kind)
	}
	if *n > 0 && len(evs) > *n {
		evs = evs[len(evs)-*n:]
	}
	for i := range evs {
		check(forensics.WriteEvent(os.Stdout, &evs[i]))
	}
}

func cmdMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	fs.Parse(args)
	evs := loadArgs(fs)
	enc := json.NewEncoder(os.Stdout)
	for i := range evs {
		check(enc.Encode(&evs[i]))
	}
}

func loadArgs(fs *flag.FlagSet) []obs.Event {
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "cryoobs: no journal files given")
		os.Exit(2)
	}
	evs, err := forensics.Load(fs.Args()...)
	check(err)
	return evs
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryoobs:", err)
		os.Exit(2)
	}
}
