// Command cryosim is the gate-level simulator CLI: it runs a mapped netlist
// over random (or clock-alternating) stimulus with either the zero-delay
// levelized engine or the event-driven engine with liberty-annotated
// transport delays, and reports toggle activity, optional VCD traces, and
// an optional measured-activity power report:
//
//	cryosim mapped.v                          # event engine, annotated delays
//	cryosim -engine levelized mapped.v        # fast zero-delay functional run
//	cryosim -vcd trace.vcd epfl:ctrl          # synthesize, simulate, dump VCD
//	cryosim -power -clock 1e-9 mapped.v       # power from measured activity
//
// Inputs are a mapped structural Verilog file (.v over the built-in PDK
// catalog) or an epfl:<name> pseudo-path, which synthesizes the benchmark
// through the full flow (testlib liberty model, cut mapper, CryoPDA
// scenario) first. Delay annotation and power use the same fabricated
// liberty library, built at -temp kelvin.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/epfl"
	"repro/internal/gsim"
	"repro/internal/liberty"
	"repro/internal/mapper"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/pdk"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/testlib"
)

var flushObs = func() {}

func main() {
	engine := flag.String("engine", "event", "simulation engine: event or levelized")
	vectors := flag.Int("vectors", 256, "number of stimulus vectors")
	seed := flag.Int64("seed", 1, "stimulus seed")
	temp := flag.Float64("temp", 300, "liberty corner temperature in kelvin (testlib model)")
	unit := flag.Bool("unit", false, "use unit arc delays instead of liberty annotation (event engine)")
	period := flag.Int64("period", 0, "stimulus period in fs (0 = auto from settle bound)")
	vcdPath := flag.String("vcd", "", "dump value changes to this VCD file (event engine)")
	doPower := flag.Bool("power", false, "run power analysis with the measured activity")
	clock := flag.Float64("clock", 1e-9, "clock period in seconds for -power")
	top := flag.Int("top", 10, "hottest nets to list with -stats")
	stats := flag.Bool("stats", true, "print run statistics")
	obsFlags := obs.InstallFlags(flag.CommandLine)
	flag.Parse()

	flush, err := obsFlags.Activate()
	check(err)
	flushObs = flush
	defer flush()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cryosim [flags] <mapped.v | epfl:name>")
		flushObs()
		os.Exit(2)
	}

	ctx, root := obs.Start(context.Background(), "cryosim")
	defer root.End()

	lib, cells := testlib.Build(pdk.Catalog(), testlib.Names(), *temp)
	nl, err := load(ctx, flag.Arg(0), lib, cells, *seed)
	check(err)
	m, err := gsim.Compile(nl)
	check(err)
	fmt.Printf("design: %s  (%d gates, %d nets, depth %d)\n",
		nl.Name, len(m.Gates), m.NumNets(), m.Depth())

	var eng gsim.Engine
	switch *engine {
	case "levelized":
		eng = gsim.NewLevelized(m)
	case "event":
		opt := gsim.EventOptions{PeriodFs: *period}
		if !*unit {
			check(m.Annotate(ctx, lib, sta.Options{}))
		}
		if *vcdPath != "" {
			f, err := os.Create(*vcdPath)
			check(err)
			defer f.Close()
			opt.Trace = gsim.NewVCDTracer(f, m, "cryosim")
		}
		eng = gsim.NewEvent(m, opt)
	default:
		check(fmt.Errorf("unknown engine %q (want event or levelized)", *engine))
	}

	res, err := eng.Run(ctx, m.RandomVectors(*vectors, *seed))
	check(err)

	if *stats {
		fmt.Printf("engine: %s  vectors=%d toggles=%d", res.Engine, res.Vectors, res.TotalToggles())
		if res.Engine == "event" {
			fmt.Printf(" events=%d max_queue=%d sim_time=%d fs annotated=%v",
				res.Events, res.MaxQueue, res.SimTimeFs, m.Annotated())
		}
		fmt.Println()
		printHotNets(m, res, *top)
	}
	obs.J().Event("sim.run", "cryosim", "simulation complete", map[string]string{
		"design":  nl.Name,
		"engine":  res.Engine,
		"vectors": fmt.Sprint(res.Vectors),
		"toggles": fmt.Sprint(res.TotalToggles()),
	})
	if *vcdPath != "" {
		obs.J().Artifact("cryosim", *vcdPath)
	}

	if *doPower {
		rep, err := power.Analyze(ctx, nl, lib, power.Options{
			ClockPeriod: *clock,
			Activity:    res.Activity(),
		})
		check(err)
		fmt.Printf("power (measured activity, clock %.3g s, %g K):\n", *clock, *temp)
		fmt.Printf("  leakage   %12.6g W\n", rep.Leakage)
		fmt.Printf("  internal  %12.6g W\n", rep.Internal)
		fmt.Printf("  switching %12.6g W\n", rep.Switching)
		fmt.Printf("  total     %12.6g W  (leakage share %.4g%%)\n",
			rep.Total(), 100*rep.LeakageShare())
	}
}

// printHotNets lists the n nets with the highest toggle densities.
func printHotNets(m *gsim.Model, res *gsim.Result, n int) {
	type hot struct {
		name string
		rate float64
	}
	rates := res.ToggleRates()
	nets := make([]hot, 0, len(rates))
	for name, r := range rates {
		if r > 0 {
			nets = append(nets, hot{name, r})
		}
	}
	sort.Slice(nets, func(i, j int) bool {
		if nets[i].rate != nets[j].rate {
			return nets[i].rate > nets[j].rate
		}
		return nets[i].name < nets[j].name
	})
	if n > len(nets) {
		n = len(nets)
	}
	for _, h := range nets[:n] {
		fmt.Printf("  net %-24s %.4f toggles/vector\n", h.name, h.rate)
	}
}

// load produces a mapped netlist: .v files are parsed over the PDK catalog,
// epfl:<name> benchmarks are synthesized through the standard flow.
func load(ctx context.Context, path string, lib *liberty.Library, cells []*pdk.Cell, seed int64) (*netlist.Netlist, error) {
	if name, ok := strings.CutPrefix(path, "epfl:"); ok {
		g, err := epfl.Build(name)
		if err != nil {
			return nil, err
		}
		ml, err := mapper.BuildMatchLibrary(lib, cells, 6)
		if err != nil {
			return nil, err
		}
		res, err := synth.Synthesize(ctx, g, ml, synth.Options{Scenario: synth.CryoPDA, Seed: seed})
		if err != nil {
			return nil, err
		}
		return res.Netlist, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return netlist.ReadVerilog(f, pdk.Catalog())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryosim:", err)
		flushObs()
		os.Exit(2)
	}
}
