// Command cryocec is the standalone combinational equivalence checker — the
// flow's analogue of ABC's `cec`. It compares two circuit representations
// in any mix of formats and prints a structured verdict:
//
//	cryocec golden.aag optimized.aag          # AIGER vs AIGER
//	cryocec golden.aag mapped.v               # AIGER vs mapped Verilog
//	cryocec epfl:adder adder_opt.aig          # EPFL generator vs binary AIGER
//
// Formats are selected by extension: .aag (ASCII AIGER), .aig (binary
// AIGER), .v (structural Verilog over the built-in PDK cell catalog,
// re-elaborated to an AIG), and the epfl:<name> pseudo-path for generated
// benchmarks. Primary inputs/outputs are paired by name when both sides
// carry matching name sets, positionally otherwise.
//
// NOT-EQUAL counterexamples are re-executed through independent engines
// (-replay, on by default): mapped-Verilog sides in the event-driven
// gate-level simulator, AIG sides by direct evaluation. A cex that fails to
// replay is reported loudly — it means the checker and the simulators
// disagree about the circuit.
//
// Exit status: 0 EQUAL, 1 NOT-EQUAL (a counterexample vector is printed),
// 2 UNDECIDED or error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/aig"
	"repro/internal/cec"
	"repro/internal/epfl"
	"repro/internal/gsim"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/pdk"
)

var flushObs = func() {}

func main() {
	budget := flag.Int64("budget", 0, "per-output conflict budget (default 200000)")
	fallback := flag.Int64("fallback-budget", 0, "fallback miter conflict budget (default 2x budget)")
	simWords := flag.Int("sim", 0, "random simulation words of 64 patterns (default 8)")
	workers := flag.Int("workers", 0, "fallback miter workers (default GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "simulation seed")
	verbose := flag.Bool("stats", true, "print engine statistics")
	replayCex := flag.Bool("replay", true, "re-execute NOT-EQUAL counterexamples in the gate-level simulator")
	obsFlags := obs.InstallFlags(flag.CommandLine)
	flag.Parse()

	flush, err := obsFlags.Activate()
	check(err)
	flushObs = flush
	defer flush()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: cryocec [flags] <golden> <impl>   (.aag, .aig, .v, or epfl:<name>)")
		flushObs()
		os.Exit(2)
	}
	a, nlA, err := load(flag.Arg(0))
	check(err)
	b, nlB, err := load(flag.Arg(1))
	check(err)
	fmt.Printf("golden: %s\nimpl:   %s\n", a, b)

	ctx, root := obs.Start(context.Background(), "cryocec")
	v := cec.Check(ctx, a, b, cec.Options{
		OutputBudget:   *budget,
		FallbackBudget: *fallback,
		SimWords:       *simWords,
		Workers:        *workers,
		Seed:           *seed,
	})
	root.End()

	if *verbose {
		s := v.Stats
		fmt.Printf("engine: miter=%d reduced=%d patterns=%d refinements=%d merges=%d(struct)+%d(sat) sat_calls=%d timeouts=%d cex=%d fallback=%d\n",
			s.MiterNodes, s.ReducedNodes, s.SimPatterns, s.Refinements,
			s.StructMerges, s.SATMerges, s.SATCalls, s.SATTimeouts, s.Cex, s.FallbackRuns)
	}
	switch v.Status {
	case cec.Equal:
		fmt.Println("EQUAL: all outputs proven equivalent")
	case cec.NotEqual:
		if v.Reason != "" {
			fmt.Printf("NOT-EQUAL: %s\n", v.Reason)
		} else {
			fmt.Printf("NOT-EQUAL: output %s differs (golden=%v impl=%v)\n", v.FailingOutput, v.OutA, v.OutB)
			fmt.Printf("counterexample: %s\n", v.CexString())
			if *replayCex {
				replay(ctx, v, side{a, nlA}, side{b, nlB})
			}
		}
		flushObs()
		os.Exit(1)
	case cec.Undecided:
		fmt.Printf("UNDECIDED: %d output(s) exhausted their budget: %s\n",
			len(v.UndecidedOutputs), strings.Join(v.UndecidedOutputs, ", "))
		flushObs()
		os.Exit(2)
	}
}

// side is one circuit under comparison; nl is non-nil when it came from a
// mapped Verilog file and can be replayed at gate level.
type side struct {
	g  *aig.AIG
	nl *netlist.Netlist
}

// replay independently re-executes the counterexample on both circuits:
// mapped-Verilog sides run through the event-driven gate-level simulator
// (an engine sharing nothing with the SAT sweep that produced the cex), AIG
// sides through direct evaluation. A cex that fails to reproduce means the
// checker and the simulators disagree about the circuit's function — worth
// shouting about.
func replay(ctx context.Context, v *cec.Verdict, golden, impl side) {
	gv, gHow, err := replayOne(ctx, golden, v)
	if err != nil {
		fmt.Printf("replay: golden side: %v\n", err)
		return
	}
	iv, iHow, err := replayOne(ctx, impl, v)
	if err != nil {
		fmt.Printf("replay: impl side: %v\n", err)
		return
	}
	if gv != iv {
		fmt.Printf("replay: CONFIRMED  golden[%s]=%v (%s)  impl[%s]=%v (%s)\n",
			v.FailingOutput, gv, gHow, v.FailingOutput, iv, iHow)
		obs.C("cec.replay.confirmed").Inc()
		return
	}
	fmt.Printf("replay: *** WARNING: counterexample did NOT reproduce ***\n")
	fmt.Printf("replay: both sides evaluate %s=%v (golden via %s, impl via %s);\n",
		v.FailingOutput, gv, gHow, iHow)
	fmt.Printf("replay: the checker's verdict and the simulators disagree — suspect a flow bug\n")
	obs.C("cec.replay.mismatch").Inc()
	obs.J().Warning("cryocec", "counterexample replay did not reproduce", map[string]string{
		"output": v.FailingOutput,
	})
}

// replayOne evaluates the failing output under the counterexample on one
// side, returning the value and a description of the engine used.
func replayOne(ctx context.Context, s side, v *cec.Verdict) (bool, string, error) {
	if s.nl != nil {
		m, err := gsim.Compile(s.nl)
		if err != nil {
			return false, "", err
		}
		vec := make(gsim.Vector, len(m.InputNames))
		for i, name := range m.InputNames {
			val, ok := cexValue(v, name, i)
			if !ok {
				return false, "", fmt.Errorf("input %s not covered by counterexample", name)
			}
			vec[i] = val
		}
		res, err := gsim.NewEvent(m, gsim.EventOptions{}).Run(ctx, []gsim.Vector{vec})
		if err != nil {
			return false, "", err
		}
		for o, name := range m.OutputNames {
			if name == v.FailingOutput {
				return res.OutputBits[0][o], "gsim event engine", nil
			}
		}
		return false, "", fmt.Errorf("output %s not in netlist", v.FailingOutput)
	}
	in := make([]bool, s.g.NumPIs())
	for i := range in {
		val, ok := cexValue(v, s.g.PIName(i), i)
		if !ok {
			return false, "", fmt.Errorf("PI %s not covered by counterexample", s.g.PIName(i))
		}
		in[i] = val
	}
	outs := s.g.Eval(in)
	for i := 0; i < s.g.NumPOs(); i++ {
		if s.g.POName(i) == v.FailingOutput {
			return outs[i], "AIG evaluation", nil
		}
	}
	return false, "", fmt.Errorf("output %s not in AIG", v.FailingOutput)
}

// cexValue resolves one input's counterexample bit, matching by name first
// (how the checker pairs interfaces) and falling back to position.
func cexValue(v *cec.Verdict, name string, pos int) (bool, bool) {
	for i, n := range v.Inputs {
		if n == name {
			return v.Counterexample[i], true
		}
	}
	if pos >= 0 && pos < len(v.Counterexample) {
		return v.Counterexample[pos], true
	}
	return false, false
}

// load reads a circuit by extension, or builds an EPFL benchmark for
// epfl:<name> pseudo-paths. Mapped Verilog files also return the parsed
// netlist so counterexamples can be replayed at gate level.
func load(path string) (*aig.AIG, *netlist.Netlist, error) {
	if name, ok := strings.CutPrefix(path, "epfl:"); ok {
		g, err := epfl.Build(name)
		return g, nil, err
	}
	switch {
	case strings.HasSuffix(path, ".v"):
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		nl, err := netlist.ReadVerilog(f, pdk.Catalog())
		if err != nil {
			return nil, nil, err
		}
		g, err := cec.Elaborate(nl)
		return g, nl, err
	case strings.HasSuffix(path, ".aig"):
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		g, err := aig.ReadAIGERBinary(f)
		return g, nil, err
	default:
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		g, err := aig.ReadAIGER(f)
		return g, nil, err
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryocec:", err)
		flushObs()
		os.Exit(2)
	}
}
