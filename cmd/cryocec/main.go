// Command cryocec is the standalone combinational equivalence checker — the
// flow's analogue of ABC's `cec`. It compares two circuit representations
// in any mix of formats and prints a structured verdict:
//
//	cryocec golden.aag optimized.aag          # AIGER vs AIGER
//	cryocec golden.aag mapped.v               # AIGER vs mapped Verilog
//	cryocec epfl:adder adder_opt.aig          # EPFL generator vs binary AIGER
//
// Formats are selected by extension: .aag (ASCII AIGER), .aig (binary
// AIGER), .v (structural Verilog over the built-in PDK cell catalog,
// re-elaborated to an AIG), and the epfl:<name> pseudo-path for generated
// benchmarks. Primary inputs/outputs are paired by name when both sides
// carry matching name sets, positionally otherwise.
//
// Exit status: 0 EQUAL, 1 NOT-EQUAL (a counterexample vector is printed),
// 2 UNDECIDED or error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/aig"
	"repro/internal/cec"
	"repro/internal/epfl"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/pdk"
)

var flushObs = func() {}

func main() {
	budget := flag.Int64("budget", 0, "per-output conflict budget (default 200000)")
	fallback := flag.Int64("fallback-budget", 0, "fallback miter conflict budget (default 2x budget)")
	simWords := flag.Int("sim", 0, "random simulation words of 64 patterns (default 8)")
	workers := flag.Int("workers", 0, "fallback miter workers (default GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "simulation seed")
	verbose := flag.Bool("stats", true, "print engine statistics")
	obsFlags := obs.InstallFlags(flag.CommandLine)
	flag.Parse()

	flush, err := obsFlags.Activate()
	check(err)
	flushObs = flush
	defer flush()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: cryocec [flags] <golden> <impl>   (.aag, .aig, .v, or epfl:<name>)")
		flushObs()
		os.Exit(2)
	}
	a, err := load(flag.Arg(0))
	check(err)
	b, err := load(flag.Arg(1))
	check(err)
	fmt.Printf("golden: %s\nimpl:   %s\n", a, b)

	ctx, root := obs.Start(context.Background(), "cryocec")
	v := cec.Check(ctx, a, b, cec.Options{
		OutputBudget:   *budget,
		FallbackBudget: *fallback,
		SimWords:       *simWords,
		Workers:        *workers,
		Seed:           *seed,
	})
	root.End()

	if *verbose {
		s := v.Stats
		fmt.Printf("engine: miter=%d reduced=%d patterns=%d refinements=%d merges=%d(struct)+%d(sat) sat_calls=%d timeouts=%d cex=%d fallback=%d\n",
			s.MiterNodes, s.ReducedNodes, s.SimPatterns, s.Refinements,
			s.StructMerges, s.SATMerges, s.SATCalls, s.SATTimeouts, s.Cex, s.FallbackRuns)
	}
	switch v.Status {
	case cec.Equal:
		fmt.Println("EQUAL: all outputs proven equivalent")
	case cec.NotEqual:
		if v.Reason != "" {
			fmt.Printf("NOT-EQUAL: %s\n", v.Reason)
		} else {
			fmt.Printf("NOT-EQUAL: output %s differs (golden=%v impl=%v)\n", v.FailingOutput, v.OutA, v.OutB)
			fmt.Printf("counterexample: %s\n", v.CexString())
		}
		flushObs()
		os.Exit(1)
	case cec.Undecided:
		fmt.Printf("UNDECIDED: %d output(s) exhausted their budget: %s\n",
			len(v.UndecidedOutputs), strings.Join(v.UndecidedOutputs, ", "))
		flushObs()
		os.Exit(2)
	}
}

// load reads a circuit by extension, or builds an EPFL benchmark for
// epfl:<name> pseudo-paths.
func load(path string) (*aig.AIG, error) {
	if name, ok := strings.CutPrefix(path, "epfl:"); ok {
		return epfl.Build(name)
	}
	switch {
	case strings.HasSuffix(path, ".v"):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		nl, err := netlist.ReadVerilog(f, pdk.Catalog())
		if err != nil {
			return nil, err
		}
		return cec.Elaborate(nl)
	case strings.HasSuffix(path, ".aig"):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return aig.ReadAIGERBinary(f)
	default:
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return aig.ReadAIGER(f)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryocec:", err)
		flushObs()
		os.Exit(2)
	}
}
