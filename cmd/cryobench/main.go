// Command cryobench is the QoR flight recorder: it runs the full cryo-EDA
// flow (synthesis -> mapping -> STA -> power, per temperature corner) over a
// benchmark profile, records quality-of-results and runtime metrics into a
// versioned JSON baseline, and diffs runs against a stored baseline with
// noise-aware thresholds.
//
// Record a baseline:
//
//	cryobench -profile smoke -repeat 3 -out bench/baseline-smoke.json
//
// Gate a change against it (exit 1 on QoR regression):
//
//	cryobench -profile smoke -baseline bench/baseline-smoke.json
//
// Diff two existing recordings without running anything:
//
//	cryobench -diff old.json new.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/explain"
	"repro/internal/obs"
	"repro/internal/qor"
	"repro/internal/spice"
)

var flushObs = func() {}

func main() {
	profileName := flag.String("profile", "smoke", "benchmark profile: "+strings.Join(qor.ProfileNames(), ", "))
	repeat := flag.Int("repeat", 0, "repetitions per circuit (0 = profile default)")
	seed := flag.Int64("seed", 1, "flow seed")
	clock := flag.String("clock", "1n", "reference clock period for WNS/TNS")
	circuits := flag.String("circuits", "", "comma-separated circuit subset (default: all in profile)")
	testlibFlag := flag.Bool("testlib", true, "use the synthetic closed-form library (false: SPICE-characterized, cached)")
	cacheDir := flag.String("cache", "build", "liberty cache directory for characterized corners")
	workers := flag.Int("workers", 0, "characterization worker pool size with -testlib=false (0 = GOMAXPROCS)")
	out := flag.String("out", "", "output baseline path (default BENCH_<timestamp>.json)")
	baselinePath := flag.String("baseline", "", "baseline to diff the fresh run against; exit 1 on QoR regression")
	diffMode := flag.Bool("diff", false, "diff two recorded baselines: cryobench -diff <base.json> <cur.json>")
	mdPath := flag.String("md", "", "also write the diff report as markdown to this path")
	explainFlag := flag.Bool("explain", false, "append a QoR attribution report (why each metric moved) to the diff; exit code unchanged")
	explainJSON := flag.String("explain-json", "", "with -explain, also write the attribution report as JSON to this path")
	strictRuntime := flag.Bool("strict-runtime", false, "runtime/engine regressions also fail the gate")
	verbose := flag.Bool("v", false, "list unchanged metrics in the diff table")
	obsFlags := obs.InstallFlags(flag.CommandLine)
	flag.Parse()

	cfg := diffConfig{
		strictRuntime: *strictRuntime,
		verbose:       *verbose,
		explain:       *explainFlag,
		mdPath:        *mdPath,
		explainJSON:   *explainJSON,
	}

	// Activate before any mode dispatch so -journal/-history/-progress work
	// in diff mode too (a diff is a run worth recording).
	flush, err := obsFlags.Activate()
	exitOn(err)
	flushObs = flush
	defer flush()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: cryobench -diff <base.json> <current.json>")
			os.Exit(2)
		}
		base, err := qor.ReadBaselineFile(flag.Arg(0))
		exitOn(err)
		cur, err := qor.ReadBaselineFile(flag.Arg(1))
		exitOn(err)
		obs.HistoryAddQoR(cur.FlatMetrics())
		code := reportDiff(base, cur, cfg)
		flushObs()
		os.Exit(code)
	}

	prof, err := qor.FindProfile(*profileName)
	exitOn(err)
	if *circuits != "" {
		prof.Circuits, err = subset(prof.Circuits, *circuits)
		exitOn(err)
	}
	clockSec, err := spice.ParseValue(*clock)
	exitOn(err)

	opt := qor.RunOptions{
		Profile:    prof,
		Repeat:     *repeat,
		Seed:       *seed,
		ClockSec:   clockSec,
		UseTestlib: *testlibFlag,
		CacheDir:   *cacheDir,
		Workers:    *workers,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	t0 := time.Now()
	b, err := qor.Run(context.Background(), opt)
	exitOn(err)
	obs.HistoryAddQoR(b.FlatMetrics())
	fmt.Fprintf(os.Stderr, "recorded %d circuit records in %.1fs\n", len(b.Circuits), time.Since(t0).Seconds())

	outPath := *out
	if outPath == "" {
		outPath = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("20060102T150405Z"))
	}
	if dir := filepath.Dir(outPath); dir != "." {
		exitOn(os.MkdirAll(dir, 0o755))
	}
	exitOn(b.WriteFile(outPath))
	obs.J().Artifact("cryobench", outPath)
	fmt.Fprintf(os.Stderr, "baseline written: %s\n", outPath)

	exitOn(qor.WriteBaselineSummary(os.Stdout, b))

	if *baselinePath == "" {
		return
	}
	base, err := qor.ReadBaselineFile(*baselinePath)
	exitOn(err)
	fmt.Println()
	if code := reportDiff(base, b, cfg); code != 0 {
		flushObs()
		os.Exit(code)
	}
}

// diffConfig bundles the reporting knobs shared by -diff and -baseline
// modes.
type diffConfig struct {
	strictRuntime bool
	verbose       bool
	explain       bool
	mdPath        string
	explainJSON   string
}

// reportDiff renders the diff to stdout (and optionally markdown), runs
// the attribution engine when -explain is set, and returns the process
// exit code the gate demands. Attribution never changes the exit code: it
// explains the verdict, it does not render one.
func reportDiff(base, cur *qor.Baseline, cfg diffConfig) int {
	rep := qor.Diff(base, cur, qor.DefaultThresholds())
	if err := rep.WriteTable(os.Stdout, cfg.verbose); err != nil {
		exitOn(err)
	}
	var att *explain.Report
	if cfg.explain {
		att = explain.Diff(base, cur, explain.DefaultOptions())
		fmt.Println()
		exitOn(att.WriteText(os.Stdout))
		obs.J().EventDetail(obs.KindAttribution, "cryobench",
			fmt.Sprintf("%d attributed deltas", att.AttributedDeltas),
			map[string]string{
				"zero_delta": fmt.Sprint(att.ZeroDelta),
				"deltas":     fmt.Sprint(att.AttributedDeltas),
			}, att)
	}
	if cfg.mdPath != "" {
		f, err := os.Create(cfg.mdPath)
		exitOn(err)
		err = rep.WriteMarkdown(f)
		if err == nil && att != nil {
			err = att.WriteMarkdown(f)
		}
		f.Close()
		exitOn(err)
		obs.J().Artifact("cryobench", cfg.mdPath)
		fmt.Fprintf(os.Stderr, "markdown report written: %s\n", cfg.mdPath)
	}
	if att != nil && cfg.explainJSON != "" {
		f, err := os.Create(cfg.explainJSON)
		exitOn(err)
		err = att.WriteJSON(f)
		f.Close()
		exitOn(err)
		obs.J().Artifact("cryobench", cfg.explainJSON)
		fmt.Fprintf(os.Stderr, "attribution report written: %s\n", cfg.explainJSON)
	}
	if rep.Failed(cfg.strictRuntime) {
		fmt.Fprintln(os.Stderr, "FAIL: QoR regression gate")
		return 1
	}
	fmt.Fprintln(os.Stderr, "PASS: no QoR regressions")
	return 0
}

// subset filters the profile circuit list down to a comma-separated request,
// rejecting names the profile does not contain.
func subset(all []string, req string) ([]string, error) {
	have := map[string]bool{}
	for _, c := range all {
		have[c] = true
	}
	var out []string
	for _, c := range strings.Split(req, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		if !have[c] {
			return nil, fmt.Errorf("circuit %q not in profile (have: %s)", c, strings.Join(all, ", "))
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -circuits selection")
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		flushObs()
		fmt.Fprintln(os.Stderr, "cryobench:", err)
		os.Exit(1)
	}
}
