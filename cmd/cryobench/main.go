// Command cryobench is the QoR flight recorder: it runs the full cryo-EDA
// flow (synthesis -> mapping -> STA -> power, per temperature corner) over a
// benchmark profile, records quality-of-results and runtime metrics into a
// versioned JSON baseline, and diffs runs against a stored baseline with
// noise-aware thresholds.
//
// Record a baseline:
//
//	cryobench -profile smoke -repeat 3 -out bench/baseline-smoke.json
//
// Gate a change against it (exit 1 on QoR regression):
//
//	cryobench -profile smoke -baseline bench/baseline-smoke.json
//
// Diff two existing recordings without running anything:
//
//	cryobench -diff old.json new.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/qor"
	"repro/internal/spice"
)

var flushObs = func() {}

func main() {
	profileName := flag.String("profile", "smoke", "benchmark profile: "+strings.Join(qor.ProfileNames(), ", "))
	repeat := flag.Int("repeat", 0, "repetitions per circuit (0 = profile default)")
	seed := flag.Int64("seed", 1, "flow seed")
	clock := flag.String("clock", "1n", "reference clock period for WNS/TNS")
	circuits := flag.String("circuits", "", "comma-separated circuit subset (default: all in profile)")
	testlibFlag := flag.Bool("testlib", true, "use the synthetic closed-form library (false: SPICE-characterized, cached)")
	cacheDir := flag.String("cache", "build", "liberty cache directory for characterized corners")
	workers := flag.Int("workers", 0, "characterization worker pool size with -testlib=false (0 = GOMAXPROCS)")
	out := flag.String("out", "", "output baseline path (default BENCH_<timestamp>.json)")
	baselinePath := flag.String("baseline", "", "baseline to diff the fresh run against; exit 1 on QoR regression")
	diffMode := flag.Bool("diff", false, "diff two recorded baselines: cryobench -diff <base.json> <cur.json>")
	mdPath := flag.String("md", "", "also write the diff report as markdown to this path")
	strictRuntime := flag.Bool("strict-runtime", false, "runtime/engine regressions also fail the gate")
	verbose := flag.Bool("v", false, "list unchanged metrics in the diff table")
	obsFlags := obs.InstallFlags(flag.CommandLine)
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: cryobench -diff <base.json> <current.json>")
			os.Exit(2)
		}
		base, err := qor.ReadBaselineFile(flag.Arg(0))
		exitOn(err)
		cur, err := qor.ReadBaselineFile(flag.Arg(1))
		exitOn(err)
		os.Exit(reportDiff(base, cur, *strictRuntime, *verbose, *mdPath))
	}

	flush, err := obsFlags.Activate()
	exitOn(err)
	flushObs = flush
	defer flush()

	prof, err := qor.FindProfile(*profileName)
	exitOn(err)
	if *circuits != "" {
		prof.Circuits, err = subset(prof.Circuits, *circuits)
		exitOn(err)
	}
	clockSec, err := spice.ParseValue(*clock)
	exitOn(err)

	opt := qor.RunOptions{
		Profile:    prof,
		Repeat:     *repeat,
		Seed:       *seed,
		ClockSec:   clockSec,
		UseTestlib: *testlibFlag,
		CacheDir:   *cacheDir,
		Workers:    *workers,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	t0 := time.Now()
	b, err := qor.Run(context.Background(), opt)
	exitOn(err)
	fmt.Fprintf(os.Stderr, "recorded %d circuit records in %.1fs\n", len(b.Circuits), time.Since(t0).Seconds())

	outPath := *out
	if outPath == "" {
		outPath = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("20060102T150405Z"))
	}
	if dir := filepath.Dir(outPath); dir != "." {
		exitOn(os.MkdirAll(dir, 0o755))
	}
	exitOn(b.WriteFile(outPath))
	obs.J().Artifact("cryobench", outPath)
	fmt.Fprintf(os.Stderr, "baseline written: %s\n", outPath)

	exitOn(qor.WriteBaselineSummary(os.Stdout, b))

	if *baselinePath == "" {
		return
	}
	base, err := qor.ReadBaselineFile(*baselinePath)
	exitOn(err)
	fmt.Println()
	if code := reportDiff(base, b, *strictRuntime, *verbose, *mdPath); code != 0 {
		flushObs()
		os.Exit(code)
	}
}

// reportDiff renders the diff to stdout (and optionally markdown) and
// returns the process exit code the gate demands.
func reportDiff(base, cur *qor.Baseline, strictRuntime, verbose bool, mdPath string) int {
	rep := qor.Diff(base, cur, qor.DefaultThresholds())
	if err := rep.WriteTable(os.Stdout, verbose); err != nil {
		exitOn(err)
	}
	if mdPath != "" {
		f, err := os.Create(mdPath)
		exitOn(err)
		err = rep.WriteMarkdown(f)
		f.Close()
		exitOn(err)
		obs.J().Artifact("cryobench", mdPath)
		fmt.Fprintf(os.Stderr, "markdown report written: %s\n", mdPath)
	}
	if rep.Failed(strictRuntime) {
		fmt.Fprintln(os.Stderr, "FAIL: QoR regression gate")
		return 1
	}
	fmt.Fprintln(os.Stderr, "PASS: no QoR regressions")
	return 0
}

// subset filters the profile circuit list down to a comma-separated request,
// rejecting names the profile does not contain.
func subset(all []string, req string) ([]string, error) {
	have := map[string]bool{}
	for _, c := range all {
		have[c] = true
	}
	var out []string
	for _, c := range strings.Split(req, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		if !have[c] {
			return nil, fmt.Errorf("circuit %q not in profile (have: %s)", c, strings.Join(all, ", "))
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -circuits selection")
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		flushObs()
		fmt.Fprintln(os.Stderr, "cryobench:", err)
		os.Exit(1)
	}
}
