// Command cryochar characterizes the 200-cell standard-cell library with
// the SPICE engine at a chosen temperature and writes the liberty file —
// the paper's Section III flow. With -compare it characterizes both 300 K
// and 10 K and prints the Fig. 2(a,b) distribution summaries.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/charlib"
	"repro/internal/liberty"
	"repro/internal/obs"
	"repro/internal/pdk"
)

const lineBreak = "\n"

var flushObs = func() {}

func main() {
	temp := flag.Float64("temp", 10, "characterization temperature (K)")
	out := flag.String("o", "", "output liberty path (default build/cryolib_<T>K.lib)")
	cacheDir := flag.String("cache", "build", "cache directory")
	limit := flag.Int("limit", 0, "characterize only the first N cells (0 = all)")
	compare := flag.Bool("compare", false, "characterize 300K and 10K and print Fig 2(a,b) distributions")
	constraints := flag.Bool("constraints", false, "also measure setup/hold for edge-triggered flops (bisection; slower)")
	workers := flag.Int("workers", 0, "bounded worker pool size for characterization (0 = GOMAXPROCS)")
	obsFlags := obs.InstallFlags(flag.CommandLine)
	flag.Parse()

	flush, err := obsFlags.Activate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryochar:", err)
		os.Exit(1)
	}
	flushObs = flush
	defer flush()
	ctx, root := obs.Start(context.Background(), "cryochar")
	defer root.End()

	cells := pdk.Catalog()
	if *limit > 0 && *limit < len(cells) {
		cells = cells[:*limit]
	}
	fmt.Printf("library: %d cells\n", len(cells))

	if *compare {
		lib300 := characterize(ctx, cells, 300, *cacheDir, "", *workers)
		lib10 := characterize(ctx, cells, 10, *cacheDir, "", *workers)
		printDistributions(lib300, lib10)
		return
	}
	lib := characterize(ctx, cells, *temp, *cacheDir, *out, *workers)
	if *constraints {
		measureConstraints(lib, cells, *temp)
	}
}

// measureConstraints runs setup/hold extraction on every flop and prints
// the results (the cached liberty stays as characterized; use the library
// API to attach constraints programmatically).
func measureConstraints(lib *liberty.Library, cells []*pdk.Cell, temp float64) {
	cfg := charlib.DefaultConfig(temp)
	fmt.Println()
	fmt.Println("flop constraints (mid slew/load, 50% references):")
	for _, cell := range cells {
		if !cell.Seq || !cell.IsFlop {
			continue
		}
		setup, hold, err := charlib.MeasureSetupHold(cell, cfg)
		if err != nil {
			fmt.Printf("  %-10s FAILED: %v"+lineBreak, cell.Name, err)
			continue
		}
		fmt.Printf("  %-10s setup %6.2f ps  hold %6.2f ps"+lineBreak, cell.Name, setup*1e12, hold*1e12)
		if lc := lib.FindCell(cell.Name); lc != nil {
			if err := charlib.AttachConstraints(lc, cell, cfg); err != nil {
				fmt.Printf("  %-10s attach failed: %v"+lineBreak, cell.Name, err)
			}
		}
	}
}

func characterize(ctx context.Context, cells []*pdk.Cell, temp float64, cacheDir, out string, workers int) *liberty.Library {
	cfg := charlib.DefaultConfig(temp)
	cfg.Workers = workers
	path := out
	if path == "" {
		path = charlib.DefaultCachePath(cacheDir, temp, len(cells))
	}
	fmt.Printf("characterizing %d cells at %g K (7x7 grid) -> %s\n", len(cells), temp, path)
	lib, err := charlib.CharacterizeLibraryCached(ctx, path, fmt.Sprintf("cryo%gk", temp), cells, cfg,
		func(done, total int) {
			if done%20 == 0 || done == total {
				fmt.Printf("  %d/%d cells\n", done, total)
			}
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryochar:", err)
		flushObs()
		os.Exit(1)
	}
	if err := lib.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "cryochar: validation:", err)
		flushObs()
		os.Exit(1)
	}
	fmt.Printf("done: %d cells at %g K\n", len(lib.Cells), temp)
	return lib
}

// printDistributions renders Fig 2(a) and Fig 2(b): library-wide delay and
// switching-energy distributions at both temperatures.
func printDistributions(lib300, lib10 *liberty.Library) {
	d300, e300 := libraryMetrics(lib300)
	d10, e10 := libraryMetrics(lib10)
	fmt.Println("\nFig 2(a) — propagation delay distribution across the library (ps):")
	printHistogramPair(d300, d10, 1e12, "ps")
	fmt.Println("\nFig 2(b) — switching energy distribution across the library (fJ):")
	printHistogramPair(e300, e10, 1e15, "fJ")
	fmt.Printf("\nmedians: delay %.2f ps @300K vs %.2f ps @10K | energy %.3f fJ @300K vs %.3f fJ @10K\n",
		median(d300)*1e12, median(d10)*1e12, median(e300)*1e15, median(e10)*1e15)
}

// libraryMetrics extracts per-cell mid-grid worst delay and average
// switching energy.
func libraryMetrics(lib *liberty.Library) (delays, energies []float64) {
	for _, c := range lib.Cells {
		var worstD, sumE float64
		var arcs int
		for _, p := range c.Outputs() {
			for _, tm := range p.Timings {
				s := tm.CellRise.Index1[len(tm.CellRise.Index1)/2]
				l := tm.CellRise.Index2[len(tm.CellRise.Index2)/2]
				d := tm.CellRise.Lookup(s, l)
				if f := tm.CellFall.Lookup(s, l); f > d {
					d = f
				}
				if d > worstD {
					worstD = d
				}
			}
			for _, pw := range p.Powers {
				s := pw.RisePower.Index1[len(pw.RisePower.Index1)/2]
				l := pw.RisePower.Index2[len(pw.RisePower.Index2)/2]
				sumE += 0.5 * (pw.RisePower.Lookup(s, l) + pw.FallPower.Lookup(s, l))
				arcs++
			}
		}
		if worstD > 0 {
			delays = append(delays, worstD)
		}
		if arcs > 0 {
			energies = append(energies, sumE/float64(arcs))
		}
	}
	return delays, energies
}

func printHistogramPair(a, b []float64, scale float64, unit string) {
	lo, hi := minMax(append(append([]float64{}, a...), b...))
	const bins = 12
	ha := histogram(a, lo, hi, bins)
	hb := histogram(b, lo, hi, bins)
	for i := 0; i < bins; i++ {
		left := lo + (hi-lo)*float64(i)/bins
		right := lo + (hi-lo)*float64(i+1)/bins
		fmt.Printf("  %7.2f-%-7.2f %s  300K %-30s 10K %s\n",
			left*scale, right*scale, unit, bar(ha[i]), bar(hb[i]))
	}
}

func histogram(v []float64, lo, hi float64, bins int) []int {
	h := make([]int, bins)
	for _, x := range v {
		i := int(float64(bins) * (x - lo) / (hi - lo))
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		h[i]++
	}
	return h
}

func bar(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	return s
}

func minMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 1
	}
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}
