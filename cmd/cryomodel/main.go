// Command cryomodel reproduces the paper's Fig. 1(b,c): transfer
// characteristics of the cryogenic-aware FinFET compact model validated
// against (virtual) measurements from 300 K down to 10 K, at low and high
// drain bias, for both device polarities. It also reports the calibration
// quality (RMS log-current agreement), the quantitative form of the paper's
// "excellent agreement" claim.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/device"
	"repro/internal/fit"
	"repro/internal/measure"
	"repro/internal/obs"
)

func main() {
	seed := flag.Int64("seed", 7, "virtual-wafer seed")
	calibrate := flag.Bool("calibrate", true, "run parameter extraction before plotting")
	sweep := flag.Bool("sweep", true, "print the I-V sweeps (Fig 1b/1c data)")
	obsFlags := obs.InstallFlags(flag.CommandLine)
	flag.Parse()

	flush, err := obsFlags.Activate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryomodel:", err)
		os.Exit(1)
	}
	defer flush()

	for _, typ := range []device.Type{device.NFET, device.PFET} {
		fmt.Printf("==== %s ====\n", typ)
		silicon := measure.ReferenceSilicon(typ, *seed)
		station := measure.NewStation(*seed + 100)
		data := station.Measure(silicon, measure.PaperPlan())

		var model *device.Model
		if typ == device.PFET {
			model = device.NewP(1)
		} else {
			model = device.NewN(1)
		}
		before := fit.LogRMSError(model, data, station.NoiseFloor)
		if *calibrate {
			res := fit.Calibrate(model, data, fit.AllKnobs, station.NoiseFloor)
			fmt.Printf("calibration: RMS log error %.4f -> %.4f decades (%d objective evaluations)\n",
				before, res.RMSLog, res.Evals)
			model = res.Model
		}
		fmt.Printf("Vth(300K)=%.3f V  Vth(10K)=%.3f V  SS(300K)=%.1f mV/dec  SS(10K)=%.1f mV/dec\n",
			model.P.Vth(300), model.P.Vth(10),
			model.P.SubthresholdSwing(300)*1e3, model.P.SubthresholdSwing(10)*1e3)
		fmt.Printf("Ion(300K)=%.2f uA  Ion(10K)=%.2f uA  Ioff(300K)=%.3g A  Ioff(10K)=%.3g A\n",
			model.OnCurrent(0.7, 300)*1e6, model.OnCurrent(0.7, 10)*1e6,
			model.OffCurrent(0.7, 300), model.OffCurrent(0.7, 10))
		if !*sweep {
			continue
		}
		for _, vds := range []float64{0.05, 0.75} {
			fig := "Fig 1(b)"
			if vds > 0.1 {
				fig = "Fig 1(c)"
			}
			fmt.Printf("\n%s — |Vds| = %g V: measured (dots) vs model (lines), Ids in A\n", fig, vds)
			w := tabwriter.NewWriter(os.Stdout, 6, 2, 2, ' ', 0)
			fmt.Fprint(w, "Vgs\t")
			for _, temp := range []float64{300, 200, 100, 77, 50, 25, 10} {
				fmt.Fprintf(w, "meas@%gK\tmodel@%gK\t", temp, temp)
			}
			fmt.Fprintln(w)
			sign := 1.0
			if typ == device.PFET {
				sign = -1
			}
			for vgs := 0.0; vgs <= 0.751; vgs += 0.075 {
				fmt.Fprintf(w, "%.3f\t", sign*vgs)
				for _, temp := range []float64{300, 200, 100, 77, 50, 25, 10} {
					meas := nearestMeasurement(data, sign*vgs, sign*vds, temp)
					sim := model.Ids(sign*vgs, sign*vds, temp)
					fmt.Fprintf(w, "%.3e\t%.3e\t", meas, sim)
				}
				fmt.Fprintln(w)
			}
			w.Flush()
		}
		fmt.Println()
	}
}

func nearestMeasurement(ds measure.Dataset, vgs, vds, temp float64) float64 {
	best := 0.0
	bestDist := 1e9
	for _, pt := range ds.Points {
		if pt.TempSet != temp {
			continue
		}
		d := abs(pt.Vgs-vgs) + abs(pt.Vds-vds)
		if d < bestDist {
			bestDist, best = d, pt.Ids
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
