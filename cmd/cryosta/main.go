// Command cryosta is a standalone signoff tool in the PrimeTime mold: it
// reads a mapped structural Verilog netlist and a characterized liberty
// library, then reports critical-path timing, per-net slack against a
// target clock, and the leakage/internal/switching power split.
//
//	cryosta -lib build/cryolib_10K_200cells.lib design.v
//	cryosta -lib lib.lib -clock 500ps -top 10 design.v
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/pdk"
	"repro/internal/power"
	"repro/internal/spice"
	"repro/internal/sta"
)

var flushObs = func() {}

func main() {
	libPath := flag.String("lib", "", "liberty library (.lib)")
	clock := flag.String("clock", "", "target clock period (e.g. 500ps, 1n); default 1.2x critical delay")
	topN := flag.Int("top", 5, "power consumers to list")
	pathsK := flag.Int("paths", 0, "report the K worst endpoint paths with per-arc delay/slew breakdown")
	obsFlags := obs.InstallFlags(flag.CommandLine)
	flag.Parse()
	if *libPath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cryosta -lib <lib.lib> [-clock 1n] [-top N] [-paths K] <netlist.v>")
		os.Exit(2)
	}
	flush, err := obsFlags.Activate()
	exitOn(err)
	flushObs = flush
	defer flush()
	ctx, root := obs.Start(context.Background(), "cryosta")
	defer root.End()
	lf, err := os.Open(*libPath)
	exitOn(err)
	lib, err := liberty.Parse(lf)
	lf.Close()
	exitOn(err)
	fmt.Printf("library %s: %d cells, T=%g K, Vdd=%g V\n", lib.Name, len(lib.Cells), lib.TempK, lib.Vdd)

	vf, err := os.Open(flag.Arg(0))
	exitOn(err)
	nl, err := netlist.ReadVerilog(vf, pdk.Catalog())
	vf.Close()
	exitOn(err)
	fmt.Printf("netlist %s: %d gates, %d inputs, %d outputs, area %.0f\n",
		nl.Name, nl.NumGates(), len(nl.Inputs), len(nl.Outputs), nl.Area())

	timing, err := sta.Analyze(ctx, nl, lib, sta.Options{})
	exitOn(err)
	fmt.Printf("\ncritical delay: %.2f ps\n", timing.CriticalDelay*1e12)
	fmt.Println("critical path (output-first):")
	for _, net := range timing.CriticalPath {
		fmt.Printf("  %-14s arrival %8.2f ps  slew %6.2f ps  load %6.3f fF\n",
			net, timing.Arrival[net]*1e12, timing.Slew[net]*1e12, timing.Load[net]*1e15)
	}

	period := timing.CriticalDelay * 1.2
	if *clock != "" {
		period, err = spice.ParseValue(*clock)
		exitOn(err)
	}
	worst := timing.WorstSlack(period)
	fmt.Printf("\nclock %.2f ps: worst slack %.2f ps", period*1e12, worst*1e12)
	if worst < 0 {
		viol := 0
		for _, s := range timing.Slacks(period) {
			if s < 0 {
				viol++
			}
		}
		fmt.Printf("  (TIMING VIOLATED on %d nets)", viol)
	}
	fmt.Println()

	if *pathsK > 0 {
		fmt.Printf("\ntop %d paths:\n", *pathsK)
		exitOn(sta.WritePathReport(os.Stdout, timing.TopPaths(*pathsK, period)))
	}

	rep, err := power.Analyze(ctx, nl, lib, power.Options{ClockPeriod: period})
	exitOn(err)
	fmt.Printf("\npower @ %.3f GHz:\n", 1e-9/period)
	fmt.Printf("  leakage   %12.4g W  (%7.4f%%)\n", rep.Leakage, rep.LeakageShare()*100)
	fmt.Printf("  internal  %12.4g W  (%7.4f%%)\n", rep.Internal, rep.Internal/rep.Total()*100)
	fmt.Printf("  switching %12.4g W  (%7.4f%%)\n", rep.Switching, rep.Switching/rep.Total()*100)
	fmt.Printf("  total     %12.4g W\n", rep.Total())

	if *topN > 0 {
		cells, err := power.Attribute(ctx, nl, lib, power.Options{ClockPeriod: period})
		exitOn(err)
		fmt.Println("\ntop consumers:")
		exitOn(power.WriteTopConsumers(os.Stdout, cells, *topN))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryosta:", err)
		flushObs()
		os.Exit(1)
	}
}
