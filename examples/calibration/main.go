// Calibration example: reproduce the paper's Section II-C flow end to end —
// measure a (virtual) 5 nm FinFET wafer on the cryogenic probe station from
// 300 K down to 10 K, extract the compact-model parameters against the
// noisy data, and validate the fitted model across the full range.
package main

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/fit"
	"repro/internal/measure"
)

func main() {
	// The "wafer": a hidden device the extraction flow never sees directly.
	silicon := measure.ReferenceSilicon(device.NFET, 2026)
	station := measure.NewStation(7)

	fmt.Println("Step 1 — measurement campaign (Lakeshore CRX-VF + B1500A substitute)")
	plan := measure.PaperPlan()
	data := station.Measure(silicon, plan)
	fmt.Printf("  %d I-V points: Vds in {50mV, 750mV}, T in %v K\n", len(data.Points), plan.Temps)
	fmt.Printf("  probe-induced thermal fluctuation: %.1f-%.1f K, current noise %.0f%%\n",
		station.FluctLo, station.FluctHi, station.NoiseRel*100)

	fmt.Println("\nStep 2 — parameter extraction (all knobs: Vth0, VthTC, TBand, MuPh0, MuExp, N0, DIBL)")
	initial := device.NewN(1)
	before := fit.LogRMSError(initial, data, station.NoiseFloor)
	res := fit.Calibrate(initial, data, fit.AllKnobs, station.NoiseFloor)
	fmt.Printf("  RMS log-current error: %.4f -> %.4f decades (%d evaluations)\n",
		before, res.RMSLog, res.Evals)

	fmt.Println("\nStep 3 — validation: extracted card vs hidden silicon")
	fmt.Printf("  %-8s %-12s %-12s %-10s\n", "param", "extracted", "silicon", "error")
	rows := []struct {
		name     string
		got, ref float64
	}{
		{"Vth0", res.Model.P.Vth0, silicon.P.Vth0},
		{"VthTC", res.Model.P.VthTC, silicon.P.VthTC},
		{"TBand", res.Model.P.TBand, silicon.P.TBand},
		{"MuPh0", res.Model.P.MuPh0, silicon.P.MuPh0},
		{"N0", res.Model.P.N0, silicon.P.N0},
		{"DIBL", res.Model.P.DIBL, silicon.P.DIBL},
	}
	for _, r := range rows {
		fmt.Printf("  %-8s %-12.4g %-12.4g %+.1f%%\n", r.name, r.got, r.ref, (r.got/r.ref-1)*100)
	}

	fmt.Println("\nPer-temperature agreement (RMS decades, fit-significant points):")
	for _, temp := range plan.Temps {
		sub := measure.Dataset{Device: data.Device, Points: data.FilterTemp(temp)}
		fmt.Printf("  %3g K: %.4f\n", temp, fit.LogRMSError(res.Model, sub, station.NoiseFloor))
	}
	fmt.Println("\nThe fitted model is now a drop-in SPICE model card valid from 300 K to 10 K.")
}
