// Signoff example: map one benchmark, then run the PrimeTime-style signoff
// views this library provides — critical path with per-net arrivals, slack
// histogram against a target clock, the leakage/internal/switching power
// split, and the top power consumers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/epfl"
	"repro/internal/mapper"
	"repro/internal/pdk"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/testlib"
)

func main() {
	name := flag.String("circuit", "router", "EPFL benchmark")
	clockPs := flag.Float64("clock", 0, "target clock period in ps (default: critical delay * 1.2)")
	flag.Parse()
	ctx := context.Background()

	g, err := epfl.Build(*name)
	exitOn(err)
	catalog := pdk.Catalog()
	lib, used := testlib.Build(catalog, testlib.Names(), 10)
	ml, err := mapper.BuildMatchLibrary(lib, used, 6)
	exitOn(err)
	res, err := synth.Synthesize(ctx, g, ml, synth.Options{Scenario: synth.CryoPDA, Seed: 11})
	exitOn(err)
	nl := res.Netlist
	fmt.Printf("%s mapped: %d gates, area %.0f\n", g.Name, nl.NumGates(), nl.Area())

	timing, err := sta.Analyze(ctx, nl, lib, sta.Options{})
	exitOn(err)
	fmt.Printf("\ncritical path (%.2f ps), output-first:\n", timing.CriticalDelay*1e12)
	for _, net := range timing.CriticalPath {
		fmt.Printf("  %-12s arrival %7.2f ps  slew %6.2f ps\n",
			net, timing.Arrival[net]*1e12, timing.Slew[net]*1e12)
	}

	period := timing.CriticalDelay * 1.2
	if *clockPs > 0 {
		period = *clockPs * 1e-12
	}
	slacks := timing.Slacks(period)
	fmt.Printf("\nslack distribution at %.2f ps clock (worst %.2f ps):\n",
		period*1e12, timing.WorstSlack(period)*1e12)
	printSlackHistogram(slacks, period)

	rep, err := power.Analyze(ctx, nl, lib, power.Options{ClockPeriod: period, Seed: 11})
	exitOn(err)
	fmt.Printf("\npower at %.2f ps clock: total %.3f uW\n", period*1e12, rep.Total()*1e6)
	fmt.Printf("  leakage   %10.4g W (%6.3f%%)\n", rep.Leakage, rep.LeakageShare()*100)
	fmt.Printf("  internal  %10.4g W (%6.3f%%)\n", rep.Internal, rep.Internal/rep.Total()*100)
	fmt.Printf("  switching %10.4g W (%6.3f%%)\n", rep.Switching, rep.Switching/rep.Total()*100)

	cells, err := power.Attribute(ctx, nl, lib, power.Options{ClockPeriod: period, Seed: 11})
	exitOn(err)
	fmt.Println("\ntop power consumers:")
	exitOn(power.WriteTopConsumers(os.Stdout, cells, 5))
}

func printSlackHistogram(slacks map[string]float64, period float64) {
	var vals []float64
	for _, s := range slacks {
		vals = append(vals, s)
	}
	sort.Float64s(vals)
	const bins = 8
	lo, hi := vals[0], vals[len(vals)-1]
	if hi == lo {
		hi = lo + 1e-12
	}
	counts := make([]int, bins)
	for _, v := range vals {
		i := int(float64(bins) * (v - lo) / (hi - lo))
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	for i, c := range counts {
		left := (lo + (hi-lo)*float64(i)/bins) * 1e12
		right := (lo + (hi-lo)*float64(i+1)/bins) * 1e12
		bar := ""
		for j := 0; j < c; j++ {
			bar += "#"
		}
		fmt.Printf("  %7.2f..%-7.2f ps |%s\n", left, right, bar)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
