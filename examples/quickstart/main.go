// Quickstart: evaluate the cryogenic-aware FinFET compact model across the
// full temperature range and print the headline cryogenic effects the paper
// builds on — threshold-voltage increase, subthreshold-swing saturation,
// mobility improvement, and leakage collapse — plus an I-V sweep at 300 K
// and 10 K.
package main

import (
	"fmt"

	"repro/internal/device"
)

func main() {
	n := device.NewN(1)
	p := device.NewP(1)
	const vdd = 0.7

	fmt.Println("Cryogenic CMOS quickstart: 5nm FinFET compact model, 300 K -> 10 K")
	fmt.Println()
	fmt.Printf("%-6s %-26s %-26s %-14s %-12s\n", "T(K)", "nFET Vth(V) / SS(mV/dec)", "pFET Vth(V) / SS(mV/dec)", "mobility gain", "Ioff nFET(A)")
	for _, temp := range []float64{300, 200, 100, 77, 50, 25, 10} {
		fmt.Printf("%-6g %10.3f / %-13.1f %10.3f / %-13.1f %-14.2f %-12.3g\n",
			temp,
			n.P.Vth(temp), n.P.SubthresholdSwing(temp)*1e3,
			p.P.Vth(temp), p.P.SubthresholdSwing(temp)*1e3,
			n.P.Mobility(temp)/n.P.Mobility(300),
			n.OffCurrent(vdd, temp))
	}

	fmt.Println("\nTransfer sweep Ids(Vgs) at |Vds| = 0.75 V (compare with the paper's Fig 1c):")
	fmt.Printf("%-8s %-14s %-14s %-14s %-14s\n", "Vgs(V)", "nFET @300K", "nFET @10K", "pFET @300K", "pFET @10K")
	for vgs := 0.0; vgs <= 0.701; vgs += 0.1 {
		fmt.Printf("%-8.2f %-14.4g %-14.4g %-14.4g %-14.4g\n",
			vgs,
			n.Ids(vgs, 0.75, 300), n.Ids(vgs, 0.75, 10),
			-p.Ids(-vgs, -0.75, 300), -p.Ids(-vgs, -0.75, 10))
	}

	fmt.Println("\nKey takeaways (paper Section II):")
	fmt.Printf("  on-current nearly unchanged: Ion(10K)/Ion(300K) = %.2f\n",
		n.OnCurrent(vdd, 10)/n.OnCurrent(vdd, 300))
	fmt.Printf("  leakage collapses:           Ioff(300K)/Ioff(10K) = %.0fx\n",
		n.OffCurrent(vdd, 300)/n.OffCurrent(vdd, 10))
	fmt.Printf("  gate capacitance slightly lower at 10K: %.1f%%\n",
		(1-n.GateCap(10)/n.GateCap(300))*100)
}
