// Synthesis example: take one EPFL benchmark through the complete
// cryogenic-aware flow — c2rs compression, the power-aware dch/if/mfs
// stage, and technology mapping under all three cost hierarchies — then
// compare power and delay under the paper's shared-clock normalization,
// and verify the mapped netlists against the source AIG.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/epfl"
	"repro/internal/mapper"
	"repro/internal/pdk"
	"repro/internal/synth"
	"repro/internal/testlib"
)

func main() {
	name := flag.String("circuit", "int2float", "EPFL benchmark to synthesize")
	verilog := flag.Bool("verilog", false, "print the mapped Verilog of the p->a->d variant")
	flag.Parse()
	ctx := context.Background()

	g, err := epfl.Build(*name)
	exitOn(err)
	fmt.Printf("circuit %s: %d inputs, %d outputs, %d AIG nodes, depth %d\n",
		g.Name, g.NumPIs(), g.NumPOs(), g.NumNodes(), g.Depth())

	catalog := pdk.Catalog()
	lib, used := testlib.Build(catalog, testlib.Names(), 10)
	ml, err := mapper.BuildMatchLibrary(lib, used, 6)
	exitOn(err)

	cmp, err := synth.Compare(ctx, g, ml, lib, synth.FlowOptions{Seed: 42})
	exitOn(err)

	fmt.Printf("\nshared clock period (slowest variant + guard band): %.2f ps\n", cmp.ClockPeriod*1e12)
	fmt.Printf("%-10s %8s %10s %12s %12s %12s\n",
		"scenario", "gates", "area", "delay(ps)", "power(uW)", "leak share")
	for _, sc := range []synth.Scenario{synth.BaselinePowerAware, synth.CryoPAD, synth.CryoPDA} {
		m := cmp.Metrics[sc]
		fmt.Printf("%-10s %8d %10.1f %12.2f %12.3f %11.4f%%\n",
			sc, m.Gates, m.Area, m.Delay*1e12, m.Power.Total()*1e6, m.Power.LeakageShare()*100)
	}
	fmt.Printf("\npower saving vs baseline:  p->a->d %+.2f%%   p->d->a %+.2f%%\n",
		cmp.PowerSaving(synth.CryoPAD)*100, cmp.PowerSaving(synth.CryoPDA)*100)
	fmt.Printf("delay overhead vs baseline: p->a->d %+.2f%%   p->d->a %+.2f%%\n",
		cmp.DelayOverhead(synth.CryoPAD)*100, cmp.DelayOverhead(synth.CryoPDA)*100)

	// Functional safety net: every variant must still realize the circuit.
	for _, sc := range []synth.Scenario{synth.BaselinePowerAware, synth.CryoPAD, synth.CryoPDA} {
		res, err := synth.Synthesize(ctx, g, ml, synth.Options{Scenario: sc, Seed: 42})
		exitOn(err)
		if err := synth.VerifyMapped(g, res, 4, 7); err != nil {
			fmt.Fprintf(os.Stderr, "scenario %v: VERIFICATION FAILED: %v\n", sc, err)
			os.Exit(1)
		}
		if sc == synth.CryoPAD && *verilog {
			fmt.Println("\nmapped netlist (p->a->d):")
			exitOn(res.Netlist.WriteVerilog(os.Stdout))
		}
	}
	fmt.Println("\nall three mapped netlists verified against the source AIG.")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
