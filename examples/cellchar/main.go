// Cell-characterization example: run the paper's Section III flow on a
// handful of standard cells — SPICE-characterize them at 300 K and 10 K on
// a slew/load grid and print the liberty view plus the room-vs-cryo
// comparison (delay nearly unchanged, switching energy slightly lower,
// leakage collapsing).
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/charlib"
	"repro/internal/liberty"
	"repro/internal/pdk"
)

func main() {
	ctx := context.Background()
	catalog := pdk.Catalog()
	names := []string{"INVx1", "NAND2x1", "XOR2x1", "AOI21x1", "DFFx1"}

	fmt.Println("Characterizing", names, "at 300 K and 10 K (3x3 quick grid)...")
	fmt.Println()
	fmt.Printf("%-10s | %-23s | %-23s | %-25s\n", "cell",
		"delay ps (300K / 10K)", "energy fJ (300K / 10K)", "leakage W (300K / 10K)")
	for _, name := range names {
		cell := pdk.FindCell(catalog, name)
		if cell == nil {
			fmt.Fprintln(os.Stderr, "unknown cell", name)
			os.Exit(1)
		}
		room, err := charlib.CharacterizeCell(ctx, cell, charlib.QuickConfig(300))
		exitOn(err)
		cryo, err := charlib.CharacterizeCell(ctx, cell, charlib.QuickConfig(10))
		exitOn(err)

		dR, eR := midMetrics(room)
		dC, eC := midMetrics(cryo)
		fmt.Printf("%-10s | %8.2f / %-12.2f | %8.3f / %-12.3f | %10.3g / %-12.3g\n",
			name, dR*1e12, dC*1e12, eR*1e15, eC*1e15, room.LeakagePower, cryo.LeakagePower)
	}

	// Emit one cell as a liberty snippet.
	inv := pdk.FindCell(catalog, "INVx1")
	lc, err := charlib.CharacterizeCell(ctx, inv, charlib.QuickConfig(10))
	exitOn(err)
	fmt.Println("\nLiberty view of INVx1 at 10 K (industry-standard format):")
	lib := &liberty.Library{Name: "cryo10k_demo", TempK: 10, Vdd: 0.7, Cells: []*liberty.Cell{lc}}
	exitOn(lib.Write(os.Stdout))
}

// midMetrics extracts the mid-grid worst arc delay and average per-event
// internal energy of a characterized cell.
func midMetrics(c *liberty.Cell) (delay, energy float64) {
	arcs := 0
	for _, p := range c.Outputs() {
		for _, tm := range p.Timings {
			s := tm.CellRise.Index1[len(tm.CellRise.Index1)/2]
			l := tm.CellRise.Index2[len(tm.CellRise.Index2)/2]
			d := tm.CellRise.Lookup(s, l)
			if f := tm.CellFall.Lookup(s, l); f > d {
				d = f
			}
			if d > delay {
				delay = d
			}
		}
		for _, pw := range p.Powers {
			s := pw.RisePower.Index1[len(pw.RisePower.Index1)/2]
			l := pw.RisePower.Index2[len(pw.RisePower.Index2)/2]
			energy += 0.5 * (pw.RisePower.Lookup(s, l) + pw.FallPower.Lookup(s, l))
			arcs++
		}
	}
	if arcs > 0 {
		energy /= float64(arcs)
	}
	return delay, energy
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
